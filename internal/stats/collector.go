package stats

import (
	"strings"

	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
)

// Canonical metric names. Every Run aggregate is backed by one of these
// counters in a metrics.Registry; Collector.Snapshot derives the Run from
// the registry, so the two views can never disagree.
const (
	MetricCycles                 = "cycles.total"
	MetricCyclePrefix            = "cycles.class." // + lowercased class tag
	MetricInstructions           = "instructions"
	MetricAccessPrefix           = "mem.access."        // + level.pipe, e.g. "l2.a"
	MetricAccessCyclesPrefix     = "mem.access_cycles." // + level.pipe
	MetricMispredictsA           = "branch.mispredicts.adet"
	MetricMispredictsB           = "branch.mispredicts.bdet"
	MetricConflictFlushes        = "alat.conflict_flushes"
	MetricLoadsPastDeferredStore = "loads.past_deferred_store"
	MetricStoresTotal            = "stores.total"
	MetricStoresDeferred         = "stores.deferred"
	MetricDeferred               = "twopass.deferred"
	MetricPreExecuted            = "twopass.preexecuted"
	MetricRegrouped              = "twopass.regrouped"
	MetricCQOccupancySum         = "cq.occupancy_sum"
	GaugeCQOccupancy             = "cq.occupancy"
)

// classTag is the metric-name suffix for each cycle class.
var classTag = [NumCycleClasses]string{
	Unstalled:       "unstalled",
	LoadStall:       "load_stall",
	NonLoadDepStall: "nonload_stall",
	ResourceStall:   "resource_stall",
	FrontEndStall:   "frontend_stall",
	APipeStall:      "apipe_stall",
}

// ClassMetricName returns the counter name backing one cycle class.
func ClassMetricName(c CycleClass) string { return MetricCyclePrefix + classTag[c] }

// AccessMetricName returns the counter name for accesses served at lvl and
// initiated by pipe p (and, with cycles set, the latency-scaled variant).
func AccessMetricName(lvl mem.Level, p Pipe, cycles bool) string {
	prefix := MetricAccessPrefix
	if cycles {
		prefix = MetricAccessCyclesPrefix
	}
	return prefix + strings.ToLower(lvl.String()) + "." + strings.ToLower(p.String())
}

// Collector is the machines' measurement front end: typed increment methods
// over registry-registered counters, hot-path cheap (each method is one or
// two handle increments), plus Snapshot to derive the legacy Run record.
// One collector belongs to one running machine.
type Collector struct {
	reg       *metrics.Registry
	benchmark string
	model     string

	cycles       *metrics.Counter
	byClass      [NumCycleClasses]*metrics.Counter
	instructions *metrics.Counter

	access       [mem.NumLevels][NumPipes]*metrics.Counter
	accessCycles [mem.NumLevels][NumPipes]*metrics.Counter

	mispredictsA *metrics.Counter
	mispredictsB *metrics.Counter

	conflictFlushes        *metrics.Counter
	loadsPastDeferredStore *metrics.Counter
	storesTotal            *metrics.Counter
	storesDeferred         *metrics.Counter

	deferred    *metrics.Counter
	preExecuted *metrics.Counter
	regrouped   *metrics.Counter

	cqOccupancySum *metrics.Counter
	cqOccupancy    *metrics.Gauge
}

// NewCollector registers the canonical counters in reg (creating any that
// do not exist yet, at zero) and returns a collector bound to them. The
// benchmark and model names are carried into Snapshot.
func NewCollector(reg *metrics.Registry, benchmark, model string) *Collector {
	c := &Collector{
		reg:       reg,
		benchmark: benchmark,
		model:     model,

		cycles:       reg.Counter(MetricCycles),
		instructions: reg.Counter(MetricInstructions),

		mispredictsA: reg.Counter(MetricMispredictsA),
		mispredictsB: reg.Counter(MetricMispredictsB),

		conflictFlushes:        reg.Counter(MetricConflictFlushes),
		loadsPastDeferredStore: reg.Counter(MetricLoadsPastDeferredStore),
		storesTotal:            reg.Counter(MetricStoresTotal),
		storesDeferred:         reg.Counter(MetricStoresDeferred),

		deferred:    reg.Counter(MetricDeferred),
		preExecuted: reg.Counter(MetricPreExecuted),
		regrouped:   reg.Counter(MetricRegrouped),

		cqOccupancySum: reg.Counter(MetricCQOccupancySum),
		cqOccupancy:    reg.Gauge(GaugeCQOccupancy),
	}
	for cls := CycleClass(0); cls < NumCycleClasses; cls++ {
		c.byClass[cls] = reg.Counter(ClassMetricName(cls))
	}
	for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
		for p := Pipe(0); p < NumPipes; p++ {
			c.access[lvl][p] = reg.Counter(AccessMetricName(lvl, p, false))
			c.accessCycles[lvl][p] = reg.Counter(AccessMetricName(lvl, p, true))
		}
	}
	return c
}

// Registry exposes the backing registry (for live reads and extra,
// machine-specific counters).
func (c *Collector) Registry() *metrics.Registry { return c.reg }

// Counter registers (or finds) an additional machine-specific counter.
func (c *Collector) Counter(name string) *metrics.Counter { return c.reg.Counter(name) }

// Cycle classifies one execution cycle. The total is incremented together
// with the class counter, so the Figure 6 invariant (classes sum to the
// total) holds by construction.
//
//flea:hotpath
func (c *Collector) Cycle(cls CycleClass) {
	c.cycles.Inc()
	c.byClass[cls].Inc()
}

// Instruction counts one architecturally retired instruction.
//
//flea:hotpath
func (c *Collector) Instruction() { c.instructions.Inc() }

// Access notes a data load served at level lvl initiated by pipe p, scaled
// by the level latency table (Figure 7).
//
//flea:hotpath
func (c *Collector) Access(lvl mem.Level, p Pipe, levelLat [mem.NumLevels]int) {
	c.access[lvl][p].Inc()
	c.accessCycles[lvl][p].Add(int64(levelLat[lvl]))
}

// MispredictA counts a misprediction detected and repaired at A-DET.
//
//flea:hotpath
func (c *Collector) MispredictA() { c.mispredictsA.Inc() }

// MispredictB counts a misprediction detected at B-DET (full flush).
//
//flea:hotpath
func (c *Collector) MispredictB() { c.mispredictsB.Inc() }

// ConflictFlush counts a flush triggered by an ALAT miss.
//
//flea:hotpath
func (c *Collector) ConflictFlush() { c.conflictFlushes.Inc() }

// LoadPastDeferredStore counts an A-pipe load issued past a deferred store.
//
//flea:hotpath
func (c *Collector) LoadPastDeferredStore() { c.loadsPastDeferredStore.Inc() }

// StoreCommitted counts an architecturally committed store.
//
//flea:hotpath
func (c *Collector) StoreCommitted() { c.storesTotal.Inc() }

// StoreDeferred counts a store executed in the B-pipe.
//
//flea:hotpath
func (c *Collector) StoreDeferred() { c.storesDeferred.Inc() }

// Defer counts an instruction deferred to the B-pipe.
//
//flea:hotpath
func (c *Collector) Defer() { c.deferred.Inc() }

// PreExecute counts an instruction completed (or started) in the A-pipe.
//
//flea:hotpath
func (c *Collector) PreExecute() { c.preExecuted.Inc() }

// Regroup counts stop bits removed by the B-pipe regrouper.
//
//flea:hotpath
func (c *Collector) Regroup(n int) { c.regrouped.Add(int64(n)) }

// CQOccupancy accumulates the per-cycle coupling-queue occupancy (and
// mirrors the instantaneous value into a gauge for live observation).
//
//flea:hotpath
func (c *Collector) CQOccupancy(n int) {
	c.cqOccupancySum.Add(int64(n))
	c.cqOccupancy.Set(int64(n))
}

// MispredictsA returns the current A-DET misprediction count (machines use
// it for trace annotations; tests for progress detection).
func (c *Collector) MispredictsA() int64 { return c.mispredictsA.Value() }

// Snapshot derives the Run record from the registry counters. ms is the
// memory hierarchy's own traffic statistics, which remain the hierarchy's
// to report.
func (c *Collector) Snapshot(ms mem.Stats) *Run {
	r := &Run{
		Benchmark:              c.benchmark,
		Model:                  c.model,
		Cycles:                 c.cycles.Value(),
		Instructions:           c.instructions.Value(),
		MispredictsA:           c.mispredictsA.Value(),
		MispredictsB:           c.mispredictsB.Value(),
		ConflictFlushes:        c.conflictFlushes.Value(),
		LoadsPastDeferredStore: c.loadsPastDeferredStore.Value(),
		StoresTotal:            c.storesTotal.Value(),
		StoresDeferred:         c.storesDeferred.Value(),
		Deferred:               c.deferred.Value(),
		PreExecuted:            c.preExecuted.Value(),
		Regrouped:              c.regrouped.Value(),
		CQOccupancySum:         c.cqOccupancySum.Value(),
		Mem:                    ms,
	}
	for cls := CycleClass(0); cls < NumCycleClasses; cls++ {
		r.ByClass[cls] = c.byClass[cls].Value()
	}
	for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
		for p := Pipe(0); p < NumPipes; p++ {
			r.Access[lvl][p] = c.access[lvl][p].Value()
			r.AccessCycles[lvl][p] = c.accessCycles[lvl][p].Value()
		}
	}
	return r
}
