package runahead

import (
	"testing"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/baseline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

func runRA(t *testing.T, cfg Config, p *program.Program) *stats.Run {
	t.Helper()
	ref, err := arch.Run(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !m.State().Equal(ref.State) {
		t.Fatalf("runahead state diverges from reference: %s", m.State().Diff(ref.State))
	}
	if r.Instructions != ref.Instructions {
		t.Fatalf("retired %d, reference %d", r.Instructions, ref.Instructions)
	}
	return r
}

func TestRunaheadMatchesReference(t *testing.T) {
	p := program.MustAssemble(t.Name(), `
        .data 0x10000000
result: .word 0
        .text
        movi r1 = 0
        movi r2 = 1
        movi r3 = 100
        movi r4 = result ;;
loop:   add r1 = r1, r2
        cmp.lt p1 = r2, r3 ;;
        addi r2 = r2, 1
        (p1) br loop ;;
        st4 [r4] = r1 ;;
        halt ;;
`)
	runRA(t, DefaultConfig(), p)
}

func TestRunaheadPrefetchesIndependentMiss(t *testing.T) {
	// A stall on miss 1's consumer triggers run-ahead, which prefetches
	// miss 2; the architectural pass then hits the in-flight line.
	p := program.MustAssemble(t.Name(), `
        movi r1 = 0x40000
        movi r2 = 0x80000
        movi r9 = 200 ;;
warm:   addi r9 = r9, -1 ;;
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;
        ld4 r3 = [r1] ;;
        add r4 = r3, r3 ;;       // stall: run-ahead begins
        ld4 r5 = [r2] ;;         // prefetched under the stall
        add r6 = r5, r5 ;;
        halt ;;
`)
	bm, err := baseline.New(baseline.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bm.Run()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.RunaheadEntries == 0 {
		t.Fatalf("run-ahead never entered")
	}
	if br.Cycles-rr.Cycles < 100 {
		t.Errorf("run-ahead prefetch gained only %d cycles over baseline (%d vs %d)",
			br.Cycles-rr.Cycles, br.Cycles, rr.Cycles)
	}
}

func TestRunaheadRandomEquivalence(t *testing.T) {
	seeds := []int64{301, 302, 303, 304}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		rcfg := workload.DefaultRandomConfig()
		rcfg.ArrayBytes = 1 << 20
		p := workload.Random(seed, rcfg)
		r := runRA(t, DefaultConfig(), p)
		if err := r.CheckInvariants(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRunaheadShortStallsSkipped(t *testing.T) {
	// L1-hit chains never trigger run-ahead under the entry threshold.
	p := program.MustAssemble(t.Name(), `
        movi r1 = 0x3000
        movi r2 = 9 ;;
        st4 [r1] = r2 ;;
        ld4 r3 = [r1] ;;
        add r4 = r3, r3 ;;
        halt ;;
`)
	m, err := New(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.RunaheadEntries != 0 {
		t.Errorf("run-ahead entered on an L1-hit stall")
	}
}

func TestRunaheadDiscardsResults(t *testing.T) {
	// A run-ahead episode executes wrong-path-ish code including stores;
	// none of it may reach architectural state. Equivalence with the
	// reference executor (checked in runRA) is the proof; this test
	// exercises the discard path deliberately with stores after a miss.
	p := program.MustAssemble(t.Name(), `
        movi r1 = 0x40000
        movi r8 = 0x3000
        movi r9 = 200 ;;
warm:   addi r9 = r9, -1 ;;
        cmpi.ne p7 = r9, 0 ;;
        (p7) br warm ;;
        ld4 r3 = [r1] ;;
        add r4 = r3, r3 ;;       // run-ahead begins here
        addi r5 = r4, 1 ;;       // poisoned in run-ahead
        st4 [r8] = r5 ;;         // must not write during run-ahead
        ld4 r6 = [r8] ;;
        halt ;;
`)
	r := runRA(t, DefaultConfig(), p)
	if r.ConflictFlushes != 0 {
		t.Errorf("runahead machine has no ALAT; flushes impossible")
	}
}

func TestRunaheadIndirectBranchFuzz(t *testing.T) {
	rcfg := workload.DefaultRandomConfig()
	rcfg.IndirectBranches = true
	for seed := int64(130); seed < 134; seed++ {
		runRA(t, DefaultConfig(), workload.Random(seed, rcfg))
	}
}
