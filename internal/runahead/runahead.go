// Package runahead implements the checkpoint-based run-ahead comparator the
// paper's §2 "initial experiments" refer to — an idealized synthesis of the
// mechanisms of Dundas (in-order runahead under a cache miss) and Mutlu
// (runahead execution with checkpoint/restore). When the in-order pipeline
// would stall on the consumer of an outstanding load, the machine
// checkpoints its register state and keeps executing speculatively:
// instructions depending on the missing value are poisoned; loads with valid
// addresses access the memory hierarchy (the prefetching benefit); stores
// write nothing. When the blocking load returns, the checkpoint is restored
// and execution resumes at the stalled group.
//
// Unlike two-pass pipelining, all run-ahead results are discarded — only the
// cache and branch-predictor warming survives — which is the paper's central
// contrast.
package runahead

import (
	"context"
	"fmt"

	"fleaflicker/internal/arch"
	"fleaflicker/internal/bpred"
	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
)

// Config parameterizes the machine.
type Config struct {
	Front      pipeline.Config
	Mem        mem.Config
	Bpred      bpred.Config
	IssueWidth int
	FUs        [isa.NumFUClasses]int
	// ExitPenalty is the number of cycles charged when leaving run-ahead
	// mode (checkpoint restore). 0 models the idealized mechanism (the
	// front-end refill is still paid).
	ExitPenalty int
	// MinStallCycles gates entry: run-ahead begins only when the
	// remaining stall exceeds this many cycles, since each episode costs
	// a front-end refill at exit. Dundas entered on every L1 miss; the
	// default only chases stalls longer than the refill.
	MinStallCycles int
	MaxCycles      int64
	// Arena, when non-nil, supplies the machine's DynInst storage so
	// back-to-back simulations reuse records (see pipeline.NewFrontEnd).
	Arena *pipeline.Arena `json:"-"`
}

// DefaultConfig returns the idealized run-ahead machine on the Table 1
// substrate.
func DefaultConfig() Config {
	return Config{
		Front:          pipeline.DefaultConfig(),
		Mem:            mem.DefaultConfig(),
		Bpred:          bpred.DefaultConfig(),
		IssueWidth:     8,
		FUs:            [isa.NumFUClasses]int{isa.ClassALU: 5, isa.ClassMEM: 3, isa.ClassFP: 3, isa.ClassBR: 3},
		MinStallCycles: 8,
		MaxCycles:      2_000_000_000,
	}
}

// Machine is one run-ahead simulation instance.
type Machine struct {
	cfg  Config
	prog *program.Program
	fe   *pipeline.FrontEnd
	hier *mem.Hierarchy
	st   *arch.State

	ready        [isa.NumRegs]int64
	loadProducer [isa.NumRegs]bool

	// arena recycles DynInst records; srcScratch and addrScratch are
	// reusable groupBlocked buffers. Together they keep the cycle loop
	// allocation-free.
	arena       *pipeline.Arena
	srcScratch  []isa.Reg
	addrScratch []uint32

	// Run-ahead mode state.
	inRunahead bool
	exitAt     int64 // when the blocking load completes
	resumePC   int32
	raRegs     [isa.NumRegs]isa.Value // speculative register copy
	raPoison   [isa.NumRegs]bool
	raReady    [isa.NumRegs]int64

	now    int64
	halted bool
	col    *stats.Collector
	tr     *trace.Tracer
	ctx    context.Context
	// RunaheadEntries/RunaheadInsts count run-ahead activity. They mirror
	// the "runahead.entries"/"runahead.insts" registry counters.
	RunaheadEntries int64
	RunaheadInsts   int64

	// Checkpoint state (see snapshot.go).
	retired   int64
	archPC    int32
	snapEvery int64
	nextSnap  int64
	draining  bool
	onSnap    func(*checkpoint.Snapshot)
	resume    *checkpoint.Snapshot
}

// modelTag identifies run-ahead machine snapshots.
const modelTag = "runahead"

// New builds a machine over a fresh copy of the program's memory.
func New(cfg Config, prog *program.Program) (*Machine, error) {
	if err := prog.Validate(cfg.IssueWidth, cfg.FUs); err != nil {
		return nil, fmt.Errorf("runahead: %w", err)
	}
	hier := mem.NewHierarchy(cfg.Mem)
	m := &Machine{
		cfg:  cfg,
		prog: prog,
		fe:   pipeline.NewFrontEnd(cfg.Front, prog, hier, bpred.New(cfg.Bpred), cfg.Arena),
		hier: hier,
		st:   arch.NewState(prog.InitialImage()),
	}
	m.arena = m.fe.Arena()
	m.col = stats.NewCollector(metrics.NewRegistry(), prog.Name, "runahead")
	return m, nil
}

// State exposes the architectural state.
func (m *Machine) State() *arch.State { return m.st }

// Attach binds the machine's observability before Run: ctx cancels the
// cycle loop, reg (when non-nil) replaces the private metrics registry, and
// tr (which may be nil) receives trace events. Must not be called after Run
// has started.
func (m *Machine) Attach(ctx context.Context, reg *metrics.Registry, tr *trace.Tracer) {
	if reg != nil {
		m.col = stats.NewCollector(reg, m.prog.Name, "runahead")
	}
	m.ctx = ctx
	m.tr = tr
}

// Run simulates to completion.
func (m *Machine) Run() (*stats.Run, error) {
	m.primeCounters()
	entries := m.col.Counter("runahead.entries")
	insts := m.col.Counter("runahead.insts")
	for !m.halted {
		if m.now >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("runahead: %q exceeded %d cycles", m.prog.Name, m.cfg.MaxCycles)
		}
		if m.ctx != nil && m.now&4095 == 0 {
			if err := m.ctx.Err(); err != nil {
				return nil, fmt.Errorf("runahead: %q: %w", m.prog.Name, err)
			}
		}
		if m.draining {
			// Fetch pauses (and run-ahead entry is suppressed in stepNormal)
			// until every fetched group has dispatched; then snapshot.
			if !m.fe.Pending() {
				m.takeSnapshot()
				m.fe.Redirect(m.archPC, m.now)
				m.draining = false
			}
		} else {
			m.fe.Tick(m.now)
		}
		if m.inRunahead {
			m.stepRunahead()
		} else {
			m.stepNormal()
		}
		if m.snapshotDue() {
			m.draining = true
		}
		m.now++
	}
	entries.Add(m.RunaheadEntries - entries.Value())
	insts.Add(m.RunaheadInsts - insts.Value())
	r := m.col.Snapshot(m.hier.Stats())
	if err := r.CheckInvariants(); err != nil {
		return nil, err
	}
	return r, nil
}

// stepNormal is the baseline in-order dispatch, except that a load-dependent
// stall triggers entry into run-ahead mode.
//
//flea:hotpath
func (m *Machine) stepNormal() {
	g := m.fe.Head(m.now)
	if g == nil {
		m.col.Cycle(stats.FrontEndStall)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeFront,
				PC: -1, Arg: int64(stats.FrontEndStall), Note: stats.FrontEndStall.String()})
		}
		return
	}
	cls, until, blocked := m.groupBlocked(g)
	if blocked {
		m.col.Cycle(cls)
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvStall, Pipe: trace.PipeA,
				PC: g.FetchPC, Arg: int64(cls), Note: cls.String()})
		}
		// No run-ahead episodes while draining toward a snapshot barrier:
		// an episode would keep speculative state (and fetched groups) in
		// flight past the quiesce point.
		if cls == stats.LoadStall && until-m.now > int64(m.cfg.MinStallCycles) && !m.draining {
			m.enterRunahead(g, until)
		}
		return
	}
	m.fe.Pop()
	m.dispatch(g)
	m.arena.PutAll(g.Insts) // the group retires (or squashes) whole
	g.Insts = g.Insts[:0]
	m.col.Cycle(stats.Unstalled)
}

// enterRunahead checkpoints architectural register state and begins
// speculative pre-execution. The stall cycles continue to be charged as load
// stalls (the architectural pipe is still blocked); run-ahead merely warms
// the caches underneath them. As a speculative entry point it must never run
// while the machine drains toward a snapshot barrier (snapshotprotocol
// checks every call site for the !draining guard).
//
//flea:hotpath
//flea:specentry
func (m *Machine) enterRunahead(g *pipeline.Group, until int64) {
	m.RunaheadEntries++
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvRunaheadEnter, Pipe: trace.PipeB,
			PC: g.FetchPC, Arg: until - m.now})
	}
	m.inRunahead = true
	m.exitAt = until
	m.resumePC = g.FetchPC
	copy(m.raRegs[:], m.st.Regs[:])
	for r := range m.raPoison {
		m.raPoison[r] = false
		m.raReady[r] = m.ready[r]
	}
	m.fe.Pop() // consume the stalled group into run-ahead execution
	m.runaheadGroup(g)
	m.arena.PutAll(g.Insts)
	g.Insts = g.Insts[:0]
}

// stepRunahead executes one cycle of run-ahead mode.
//
//flea:hotpath
func (m *Machine) stepRunahead() {
	m.col.Cycle(stats.LoadStall) // the architectural pipe is stalled
	if m.now >= m.exitAt {
		m.exitRunahead()
		return
	}
	if g := m.fe.Head(m.now); g != nil {
		m.fe.Pop()
		m.runaheadGroup(g)
		m.arena.PutAll(g.Insts)
		g.Insts = g.Insts[:0]
	}
}

// exitRunahead restores the checkpoint and redirects fetch to the stalled
// group.
//
//flea:hotpath
func (m *Machine) exitRunahead() {
	if m.tr.Enabled() {
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvRunaheadExit, Pipe: trace.PipeB,
			PC: m.resumePC})
	}
	m.inRunahead = false
	m.fe.Redirect(m.resumePC, m.now+int64(m.cfg.ExitPenalty))
}

// runaheadGroup pre-executes one issue group speculatively: poisoned or
// unready operands poison destinations; loads prefetch; stores and all
// register results are discarded at exit.
//
//flea:hotpath
func (m *Machine) runaheadGroup(g *pipeline.Group) {
	for _, d := range g.Insts {
		in := d.In
		m.RunaheadInsts++
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvPreExec, Pipe: trace.PipeB,
				ID: d.ID, PC: d.PC, Note: in.String()})
		}
		pv, pok := m.raRead(in.Pred)
		if !pok {
			m.raPoisonDst(in.Dst)
			continue
		}
		if pv == 0 {
			if in.Op.IsBranch() {
				m.runaheadBranch(d, false)
			}
			continue
		}
		switch {
		case in.Op == isa.OpNop:
		case in.Op == isa.OpHalt:
			// Wrong-path or real halt: stop run-ahead fetch; the
			// checkpoint restore will sort it out.
			return
		case in.Op.IsLoad():
			base, ok := m.raRead(in.Src1)
			if !ok {
				m.raPoisonDst(in.Dst)
				continue
			}
			addr := isa.EffectiveAddress(base, in.Imm)
			if !m.hier.CanAcceptLoad(addr, m.now) {
				m.raPoisonDst(in.Dst)
				continue
			}
			lat, lvl := m.hier.Load(addr, m.now) // the prefetch
			m.col.Access(lvl, stats.PipeA, m.hier.Levels())
			if int64(lat) > int64(m.cfg.Mem.L1D.Latency) {
				// The value would not return within run-ahead reach;
				// Dundas/Mutlu poison such destinations.
				m.raPoisonDst(in.Dst)
				continue
			}
			m.raWrite(in.Dst, m.st.Mem.Read(addr, in.Op.MemSize()), m.now+int64(lat))
		case in.Op.IsStore():
			// Stores write nothing in run-ahead mode.
		case in.Op.IsBranch():
			if in.Op == isa.OpBrRet || in.Op == isa.OpBrInd {
				if _, ok := m.raRead(in.Src1); !ok {
					return // cannot follow an unknown target; stop here
				}
			}
			if m.runaheadBranch(d, true) {
				return
			}
		default:
			v1, ok1 := m.raRead(in.Src1)
			v2, ok2 := m.raRead(in.Src2)
			if !ok1 || !ok2 {
				m.raPoisonDst(in.Dst)
				continue
			}
			m.raWrite(in.Dst, isa.Eval(in.Op, v1, v2, in.Imm), m.now+int64(in.Op.Latency()))
		}
	}
}

// runaheadBranch resolves a branch speculatively during run-ahead and
// redirects run-ahead fetch on a misprediction (without predictor training —
// the architectural pass will train it).
//
//flea:hotpath
func (m *Machine) runaheadBranch(d *pipeline.DynInst, predOn bool) (squash bool) {
	in := d.In
	taken := false
	target := d.PC + 1
	if predOn {
		switch in.Op {
		case isa.OpBr, isa.OpBrCall:
			taken, target = true, in.Target
			if in.Op == isa.OpBrCall {
				m.raWrite(in.Dst, isa.Value(uint32(d.PC+1)), m.now+1)
			}
		case isa.OpBrRet, isa.OpBrInd:
			v, _ := m.raRead(in.Src1)
			taken = true
			target = int32(uint32(v))
		}
	}
	actualNext := d.PC + 1
	if taken {
		actualNext = target
	}
	if actualNext == d.NextPC && !d.NoPrediction {
		return false
	}
	m.fe.Redirect(actualNext, m.now+pipeline.DETOffset)
	return true
}

//flea:hotpath
func (m *Machine) raRead(r isa.Reg) (isa.Value, bool) {
	if r == isa.RegNone || r.Hardwired() {
		return isa.HardwiredValue(r), true
	}
	if m.raPoison[r] || m.raReady[r] > m.now {
		return 0, false
	}
	return m.raRegs[r], true
}

//flea:hotpath
func (m *Machine) raWrite(r isa.Reg, v isa.Value, readyAt int64) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.raRegs[r] = v
	m.raPoison[r] = false
	m.raReady[r] = readyAt
}

//flea:hotpath
func (m *Machine) raPoisonDst(r isa.Reg) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.raPoison[r] = true
}

// groupBlocked mirrors the baseline REG-stage interlocks and additionally
// reports when the blockage clears.
//
//flea:hotpath
func (m *Machine) groupBlocked(g *pipeline.Group) (stats.CycleClass, int64, bool) {
	blockedUntil := int64(-1)
	blockedByLoad := false
	consider := func(r isa.Reg) {
		if r == isa.RegNone || r.Hardwired() {
			return
		}
		if t := m.ready[r]; t > m.now && t > blockedUntil {
			blockedUntil = t
			blockedByLoad = m.loadProducer[r]
		}
	}
	srcs := m.srcScratch
	for _, d := range g.Insts {
		srcs = d.In.Sources(srcs[:0])
		for _, s := range srcs {
			consider(s)
		}
		if d.In.HasDest() {
			consider(d.In.Dst)
		}
	}
	m.srcScratch = srcs
	if blockedUntil > m.now {
		if blockedByLoad {
			return stats.LoadStall, blockedUntil, true
		}
		return stats.NonLoadDepStall, blockedUntil, true
	}
	addrs := m.addrScratch[:0]
	for _, d := range g.Insts {
		if !d.In.Op.IsLoad() || m.st.Read(d.In.Pred) == 0 {
			continue
		}
		addrs = append(addrs, isa.EffectiveAddress(m.st.Read(d.In.Src1), d.In.Imm))
	}
	m.addrScratch = addrs
	if len(addrs) > 0 && !m.hier.CanAcceptLoads(addrs, m.now) {
		return stats.ResourceStall, m.now + 1, true
	}
	return 0, 0, false
}

// dispatch is the architectural (non-speculative) group execution, identical
// to the baseline machine's.
//
//flea:hotpath
func (m *Machine) dispatch(g *pipeline.Group) {
	for _, d := range g.Insts {
		in := d.In
		m.col.Instruction()
		m.retired++
		if m.tr.Enabled() {
			m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvDispatch, Pipe: trace.PipeA,
				ID: d.ID, PC: d.PC, Note: in.String()})
		}
		predOn := m.st.Read(in.Pred) != 0
		if in.Op.IsBranch() || in.Op == isa.OpHalt {
			if m.resolveBranch(d, predOn) {
				return
			}
			continue
		}
		m.archPC = d.PC + 1
		if !predOn {
			continue
		}
		switch {
		case in.Op == isa.OpNop:
		case in.Op.IsLoad():
			addr := isa.EffectiveAddress(m.st.Read(in.Src1), in.Imm)
			lat, lvl := m.hier.Load(addr, m.now)
			m.col.Access(lvl, stats.PipeA, m.hier.Levels())
			m.st.Write(in.Dst, m.st.Mem.Read(addr, in.Op.MemSize()))
			m.setReady(in.Dst, m.now+int64(lat), true)
		case in.Op.IsStore():
			addr := isa.EffectiveAddress(m.st.Read(in.Src1), in.Imm)
			m.st.Mem.Write(addr, in.Op.MemSize(), m.st.Read(in.Src2))
			m.hier.Store(addr, m.now)
			m.col.StoreCommitted()
		default:
			m.st.Write(in.Dst, isa.Eval(in.Op, m.st.Read(in.Src1), m.st.Read(in.Src2), in.Imm))
			m.setReady(in.Dst, m.now+int64(in.Op.Latency()), false)
		}
	}
}

//flea:hotpath
func (m *Machine) setReady(r isa.Reg, at int64, fromLoad bool) {
	if r == isa.RegNone || r.Hardwired() {
		return
	}
	m.ready[r] = at
	m.loadProducer[r] = fromLoad
}

//flea:hotpath
func (m *Machine) resolveBranch(d *pipeline.DynInst, predOn bool) (squash bool) {
	in := d.In
	if in.Op == isa.OpHalt {
		m.halted = true
		return true
	}
	taken := false
	target := d.PC + 1
	if predOn {
		switch in.Op {
		case isa.OpBr, isa.OpBrCall:
			taken, target = true, in.Target
			if in.Op == isa.OpBrCall {
				m.st.Write(in.Dst, isa.Value(uint32(d.PC+1)))
				m.setReady(in.Dst, m.now+1, false)
			}
		case isa.OpBrRet, isa.OpBrInd:
			taken = true
			target = int32(uint32(m.st.Read(in.Src1)))
		}
	}
	actualNext := d.PC + 1
	if taken {
		actualNext = target
	}
	m.archPC = actualNext
	pred := m.fe.Predictor()
	if d.HasCP {
		pred.Resolve(d.PC, d.CP, d.PredTaken, taken)
	}
	if taken && (in.Op == isa.OpBrRet || in.Op == isa.OpBrInd) {
		pred.UpdateIndirect(d.PC, target)
	}
	mispredicted := actualNext != d.NextPC || d.NoPrediction
	if m.tr.Enabled() {
		var arg int64
		if mispredicted {
			arg = 1
		}
		m.tr.Emit(trace.Event{Cycle: m.now, Type: trace.EvBranchResolve, Pipe: trace.PipeA,
			ID: d.ID, PC: d.PC, Arg: arg, Note: in.String()})
	}
	if !mispredicted {
		return false
	}
	m.col.MispredictA()
	m.fe.Redirect(actualNext, m.now+pipeline.DETOffset)
	return true
}
