package runahead

import (
	"fmt"

	"fleaflicker/internal/checkpoint"
	"fleaflicker/internal/isa"
)

// Checkpoint support. Snapshots are taken at drain barriers: while a snapshot
// is pending, fetch pauses, run-ahead entry is suppressed (an episode would
// leave speculative state in flight), and once every fetched group has
// dispatched the machine is quiesced — the run-ahead register copy, poison
// bits and exit state are all dead outside an episode, so the persistent
// state is just the scoreboard plus the episode statistics.

const scoreboardSection = "runahead.scoreboard"

// ConfigureSnapshots implements core.Snapshotter.
func (m *Machine) ConfigureSnapshots(every int64, fn func(*checkpoint.Snapshot)) {
	m.snapEvery = every
	m.onSnap = fn
	m.nextSnap = every
	for m.nextSnap <= m.retired {
		m.nextSnap += every
	}
}

// snapshotDue reports whether the machine has crossed its snapshot interval
// and should begin draining toward a barrier. It runs every cycle of the
// Run loop, so it must stay allocation-free and inlinable.
//
//flea:hotpath
//flea:inline
//flea:noescape
func (m *Machine) snapshotDue() bool {
	return m.snapEvery > 0 && !m.draining && m.retired >= m.nextSnap
}

// RestoreSnapshot implements core.Snapshotter.
func (m *Machine) RestoreSnapshot(snap *checkpoint.Snapshot) error {
	if snap.Program != "" && snap.Program != m.prog.Name {
		return fmt.Errorf("runahead: snapshot is for program %q, machine runs %q", snap.Program, m.prog.Name)
	}
	m.st.Regs = snap.Regs
	m.st.Mem = snap.Mem.Image()
	m.retired = snap.Retired
	m.archPC = snap.PC
	m.resume = snap

	switch snap.Kind {
	case checkpoint.KindFunctional:
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, -1)
		return nil
	case checkpoint.KindMachine:
		if snap.Model != modelTag {
			return fmt.Errorf("runahead: snapshot is from model %q", snap.Model)
		}
		m.now = snap.Cycle
		if err := m.hier.RestoreState(snap.Hier); err != nil {
			return err
		}
		if err := m.fe.Predictor().RestoreState(snap.Pred); err != nil {
			return err
		}
		m.fe.RestoreStream(snap.FeNextID, snap.FeFetchStalls)
		//flea:handoff Redirect returns every in-flight group's records to the arena before refetching
		m.fe.Redirect(snap.PC, snap.Cycle)
		b, ok := snap.Section(scoreboardSection)
		if !ok {
			return fmt.Errorf("runahead: snapshot has no %s section", scoreboardSection)
		}
		d := checkpoint.NewDecoder(b)
		for r := range m.ready {
			m.ready[r] = d.I64()
			m.loadProducer[r] = d.Bool()
		}
		// The episode totals live in machine fields between registry syncs;
		// restoring them keeps the end-of-run sync additive.
		m.RunaheadEntries = d.I64()
		m.RunaheadInsts = d.I64()
		return d.Err()
	}
	return fmt.Errorf("runahead: unknown snapshot kind %d", snap.Kind)
}

// primeCounters seeds the registry from a restored snapshot (Run prologue,
// after Attach).
func (m *Machine) primeCounters() {
	if m.resume == nil {
		return
	}
	reg := m.col.Registry()
	for _, c := range m.resume.Counters {
		reg.RestoreCounter(c.Name, c.Value)
	}
	m.resume = nil
}

// takeSnapshot captures the quiesced machine at a drain barrier.
func (m *Machine) takeSnapshot() {
	// The registry's episode counters lag the machine fields between syncs;
	// bring them current so the captured counter set is coherent.
	entries := m.col.Counter("runahead.entries")
	entries.Add(m.RunaheadEntries - entries.Value())
	insts := m.col.Counter("runahead.insts")
	insts.Add(m.RunaheadInsts - insts.Value())

	s := &checkpoint.Snapshot{
		Kind:    checkpoint.KindMachine,
		Model:   modelTag,
		Program: m.prog.Name,
		Cycle:   m.now,
		Retired: m.retired,
		PC:      m.archPC,
		Regs:    m.st.Regs,
		Mem:     m.st.Mem.Snapshot(),
		Hier:    m.hier.CaptureState(),
		Pred:    m.fe.Predictor().CaptureState(),
	}
	s.FeNextID, s.FeFetchStalls = m.fe.StreamState()
	var cs []checkpoint.Counter
	m.col.Registry().EachCounter(func(name string, value int64) {
		cs = append(cs, checkpoint.Counter{Name: name, Value: value})
	})
	s.SetCounters(cs)
	e := checkpoint.NewEncoder(isa.NumRegs*9 + 16)
	for r := range m.ready {
		e.I64(m.ready[r])
		e.Bool(m.loadProducer[r])
	}
	e.I64(m.RunaheadEntries)
	e.I64(m.RunaheadInsts)
	s.AddSection(scoreboardSection, e.Bytes())
	for m.nextSnap <= m.retired {
		m.nextSnap += m.snapEvery
	}
	if m.onSnap != nil {
		m.onSnap(s)
	}
}
