// Package checkpoint defines the machine-snapshot vocabulary that lets
// simulations fast-forward: a Snapshot captures the architectural state
// (registers, copy-on-write memory pages, committed-store log position) plus
// — for machine-tier snapshots — the timed microarchitectural state (cache
// ways, branch-predictor tables, metric counters, and a per-model opaque
// section). core.ComputeReference produces functional snapshots at retirement
// intervals; timed machines produce machine snapshots at drain barriers and
// restore either kind through the core.Snapshotter interface.
//
// Two tiers exist because they trade fidelity for sharing:
//
//   - KindFunctional snapshots come from the reference executor. They are
//     model-independent, so one snapshot fans out across every lattice cell
//     of a differential sweep; a resumed run re-times only the remaining
//     delta (caches and predictor restart cold) while its architectural
//     results — final registers, memory, store log, instruction count — are
//     byte-identical to a from-zero run.
//   - KindMachine snapshots come from one timed machine at a quiesce point
//     (pipeline drained). Resuming one reproduces the producing run exactly,
//     cycle counts and trace stream included.
//
// Serialization (MarshalBinary/UnmarshalBinary) is byte-deterministic: pages,
// counters and sections are encoded in sorted order with fixed-width
// little-endian integers, so equal snapshots always encode to equal bytes.
package checkpoint

import (
	"sort"

	"fleaflicker/internal/bpred"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
)

// Kind distinguishes the two snapshot tiers.
type Kind uint8

const (
	// KindFunctional is a reference-executor snapshot: architectural state
	// only, shareable across models.
	KindFunctional Kind = iota
	// KindMachine is a timed-machine snapshot taken at a drain barrier:
	// architectural plus microarchitectural state, exact for one model and
	// configuration.
	KindMachine
)

func (k Kind) String() string {
	switch k {
	case KindFunctional:
		return "functional"
	case KindMachine:
		return "machine"
	}
	return "?"
}

// Counter is one metric-registry counter value at capture time. A resumed
// machine primes its registry with these so end-of-run aggregates equal the
// from-zero run's.
type Counter struct {
	Name  string
	Value int64
}

// Section is one model-specific opaque state blob (scoreboards, the A-file,
// ALAT statistics...), encoded deterministically by the producing machine
// with an Encoder. Sections are kept sorted by name.
type Section struct {
	Name string
	Data []byte
}

// Snapshot is one resumable simulation state.
type Snapshot struct {
	Kind Kind
	// Model is the producing machine's model tag ("base", "2P", ...);
	// empty for functional snapshots.
	Model string
	// Program names the program the snapshot belongs to; restore refuses a
	// mismatch.
	Program string

	// Cycle is the machine cycle the snapshot was taken at (0 for
	// functional snapshots, which carry no timing).
	Cycle int64
	// Retired is the number of architecturally retired instructions.
	Retired int64
	// PC is the next architectural instruction to execute.
	PC int32
	// Regs is the architectural register file.
	Regs [isa.NumRegs]isa.Value
	// Mem is the copy-on-write memory snapshot.
	Mem *mem.ImageSnapshot

	// StoreN, StoreHash and StorePrefix mirror the committed-store log at
	// capture (mem.StoreLog), so a resumed run's log continues — and ends —
	// exactly as the producer's would.
	StoreN      int64
	StoreHash   uint64
	StorePrefix []mem.StoreCommit

	// Functional execution counts at capture (reference snapshots).
	ByClass                 [isa.NumFUClasses]int64
	Loads, Stores, Branches int64

	// Machine-tier state (nil / zero for functional snapshots).
	FeNextID      uint64
	FeFetchStalls int64
	Hier          *mem.HierarchyState
	Pred          *bpred.State
	// Counters holds every registry counter at capture, in sorted name
	// order.
	Counters []Counter
	// Sections holds the per-model state blobs, in sorted name order.
	Sections []Section
}

// Section returns the named section's data, ok=false when absent.
func (s *Snapshot) Section(name string) ([]byte, bool) {
	i := sort.Search(len(s.Sections), func(i int) bool { return s.Sections[i].Name >= name })
	if i < len(s.Sections) && s.Sections[i].Name == name {
		return s.Sections[i].Data, true
	}
	return nil, false
}

// AddSection inserts (or replaces) a named section, keeping the slice sorted
// so serialization order never depends on insertion order.
func (s *Snapshot) AddSection(name string, data []byte) {
	i := sort.Search(len(s.Sections), func(i int) bool { return s.Sections[i].Name >= name })
	if i < len(s.Sections) && s.Sections[i].Name == name {
		s.Sections[i].Data = data
		return
	}
	s.Sections = append(s.Sections, Section{})
	copy(s.Sections[i+1:], s.Sections[i:])
	s.Sections[i] = Section{Name: name, Data: data}
}

// SetCounters replaces the counter set, sorting by name.
func (s *Snapshot) SetCounters(cs []Counter) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	s.Counters = cs
}
