package checkpoint

import (
	"encoding/binary"
	"fmt"

	"fleaflicker/internal/bpred"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
)

// Binary layout: magic "FLCK", one version byte, then every field in struct
// order with fixed-width little-endian integers. Variable-length collections
// are length-prefixed and written in sorted order (pages by base address,
// counters and sections by name), so serialization is a pure function of the
// snapshot's logical content: equal snapshots encode to equal bytes.

var magic = [4]byte{'F', 'L', 'C', 'K'}

const version = 1

// Encoder builds a deterministic little-endian byte stream. Machines also use
// it for their per-model Sections so those blobs share the determinism
// guarantee.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder { return &Encoder{buf: make([]byte, 0, n)} }

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (1/0).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I32 appends a little-endian int32.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a little-endian int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bytes32 appends a u32 length prefix followed by the raw bytes.
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads back a stream produced by Encoder. Errors are sticky: after
// the first failure every read returns zero values and Err reports the cause.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, nil if none.
func (d *Decoder) err2(n int, what string) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("checkpoint: truncated stream reading %s at offset %d", what, d.off)
		return false
	}
	return true
}

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Rest returns the number of unread bytes.
func (d *Decoder) Rest() int { return len(d.buf) - d.off }

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.err2(1, "u8") {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads a one-byte bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.err2(4, "u32") {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.err2(8, "u64") {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I32 reads a little-endian int32.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bytes32 reads a length-prefixed byte slice (copied out of the stream).
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	if !d.err2(n, "bytes") {
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	if !d.err2(n, "string") {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// MarshalBinary encodes the snapshot deterministically.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	pages := 0
	if s.Mem != nil {
		pages = s.Mem.Pages()
	}
	e := NewEncoder(256 + pages*(4+mem.PageBytes))
	e.buf = append(e.buf, magic[:]...)
	e.U8(version)
	e.U8(uint8(s.Kind))
	e.String(s.Model)
	e.String(s.Program)
	e.I64(s.Cycle)
	e.I64(s.Retired)
	e.I32(s.PC)
	for _, r := range s.Regs {
		e.U64(uint64(r))
	}
	e.U32(uint32(pages))
	if s.Mem != nil {
		s.Mem.EachPage(func(base uint32, data *[mem.PageBytes]byte) {
			e.U32(base)
			e.buf = append(e.buf, data[:]...)
		})
	}
	e.I64(s.StoreN)
	e.U64(s.StoreHash)
	e.U32(uint32(len(s.StorePrefix)))
	for _, c := range s.StorePrefix {
		e.U32(c.Addr)
		e.Int(c.Size)
		e.U64(c.Val)
	}
	for _, v := range s.ByClass {
		e.I64(v)
	}
	e.I64(s.Loads)
	e.I64(s.Stores)
	e.I64(s.Branches)
	e.U64(s.FeNextID)
	e.I64(s.FeFetchStalls)
	e.Bool(s.Hier != nil)
	if s.Hier != nil {
		encodeHier(e, s.Hier)
	}
	e.Bool(s.Pred != nil)
	if s.Pred != nil {
		encodePred(e, s.Pred)
	}
	e.U32(uint32(len(s.Counters)))
	for _, c := range s.Counters {
		e.String(c.Name)
		e.I64(c.Value)
	}
	e.U32(uint32(len(s.Sections)))
	for _, sec := range s.Sections {
		e.String(sec.Name)
		e.Bytes32(sec.Data)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary decodes a stream produced by MarshalBinary.
func (s *Snapshot) UnmarshalBinary(b []byte) error {
	if len(b) < len(magic)+1 || string(b[:4]) != string(magic[:]) {
		return fmt.Errorf("checkpoint: bad magic")
	}
	if b[4] != version {
		return fmt.Errorf("checkpoint: unsupported version %d", b[4])
	}
	d := NewDecoder(b[5:])
	s.Kind = Kind(d.U8())
	s.Model = d.String()
	s.Program = d.String()
	s.Cycle = d.I64()
	s.Retired = d.I64()
	s.PC = d.I32()
	for i := range s.Regs {
		s.Regs[i] = isa.Value(d.U64())
	}
	pages := int(d.U32())
	s.Mem = mem.NewImageSnapshot()
	var page [mem.PageBytes]byte
	for i := 0; i < pages && d.Err() == nil; i++ {
		base := d.U32()
		if !d.err2(mem.PageBytes, "page") {
			break
		}
		copy(page[:], d.buf[d.off:])
		d.off += mem.PageBytes
		if err := s.Mem.SetPage(base, page[:]); err != nil {
			return err
		}
	}
	s.StoreN = d.I64()
	s.StoreHash = d.U64()
	np := int(d.U32())
	s.StorePrefix = make([]mem.StoreCommit, 0, np)
	for i := 0; i < np && d.Err() == nil; i++ {
		s.StorePrefix = append(s.StorePrefix, mem.StoreCommit{Addr: d.U32(), Size: d.Int(), Val: d.U64()})
	}
	for i := range s.ByClass {
		s.ByClass[i] = d.I64()
	}
	s.Loads = d.I64()
	s.Stores = d.I64()
	s.Branches = d.I64()
	s.FeNextID = d.U64()
	s.FeFetchStalls = d.I64()
	if d.Bool() {
		s.Hier = decodeHier(d)
	} else {
		s.Hier = nil
	}
	if d.Bool() {
		s.Pred = decodePred(d)
	} else {
		s.Pred = nil
	}
	nc := int(d.U32())
	s.Counters = make([]Counter, 0, nc)
	for i := 0; i < nc && d.Err() == nil; i++ {
		s.Counters = append(s.Counters, Counter{Name: d.String(), Value: d.I64()})
	}
	ns := int(d.U32())
	s.Sections = make([]Section, 0, ns)
	for i := 0; i < ns && d.Err() == nil; i++ {
		s.Sections = append(s.Sections, Section{Name: d.String(), Data: d.Bytes32()})
	}
	if d.Err() != nil {
		return d.Err()
	}
	if d.Rest() != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes", d.Rest())
	}
	return nil
}

func encodeCache(e *Encoder, c *mem.CacheState) {
	e.U32(uint32(len(c.Ways)))
	for _, w := range c.Ways {
		e.U32(w.Tag)
		e.Bool(w.Valid)
		e.Bool(w.Dirty)
		e.U64(w.LRU)
	}
	e.U64(c.Tick)
	e.I64(c.Stats.Accesses)
	e.I64(c.Stats.Misses)
	e.I64(c.Stats.Writebacks)
}

func decodeCache(d *Decoder) mem.CacheState {
	n := int(d.U32())
	c := mem.CacheState{Ways: make([]mem.WayState, 0, n)}
	for i := 0; i < n && d.Err() == nil; i++ {
		c.Ways = append(c.Ways, mem.WayState{Tag: d.U32(), Valid: d.Bool(), Dirty: d.Bool(), LRU: d.U64()})
	}
	c.Tick = d.U64()
	c.Stats = mem.CacheStats{Accesses: d.I64(), Misses: d.I64(), Writebacks: d.I64()}
	return c
}

func encodeHier(e *Encoder, h *mem.HierarchyState) {
	encodeCache(e, &h.L1I)
	encodeCache(e, &h.L1D)
	encodeCache(e, &h.L2)
	encodeCache(e, &h.L3)
	encodeStats(e, &h.Base)
	e.U32(uint32(len(h.Inflight)))
	for _, f := range h.Inflight {
		e.U32(f.Line)
		e.I64(f.Done)
		e.U8(uint8(f.Level))
	}
}

func decodeHier(d *Decoder) *mem.HierarchyState {
	h := &mem.HierarchyState{}
	h.L1I = decodeCache(d)
	h.L1D = decodeCache(d)
	h.L2 = decodeCache(d)
	h.L3 = decodeCache(d)
	h.Base = decodeStats(d)
	n := int(d.U32())
	h.Inflight = make([]mem.InflightFill, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		h.Inflight = append(h.Inflight, mem.InflightFill{Line: d.U32(), Done: d.I64(), Level: mem.Level(d.U8())})
	}
	return h
}

func encodeStats(e *Encoder, s *mem.Stats) {
	for _, v := range s.DataServed {
		e.I64(v)
	}
	for _, v := range s.FetchServed {
		e.I64(v)
	}
	e.I64(s.Stores)
}

func decodeStats(d *Decoder) mem.Stats {
	var s mem.Stats
	for i := range s.DataServed {
		s.DataServed[i] = d.I64()
	}
	for i := range s.FetchServed {
		s.FetchServed[i] = d.I64()
	}
	s.Stores = d.I64()
	return s
}

func encodePred(e *Encoder, p *bpred.State) {
	e.U32(uint32(len(p.PHT)))
	e.buf = append(e.buf, p.PHT...)
	e.U32(p.GHR)
	e.U32(uint32(len(p.BTB)))
	for _, v := range p.BTB {
		e.I32(v)
	}
	for _, v := range p.BTBTagged {
		e.I32(v)
	}
	e.U32(uint32(len(p.RAS)))
	for _, v := range p.RAS {
		e.I32(v)
	}
	e.Int(p.RASTop)
	e.I64(p.Lookups)
	e.I64(p.Mispredicts)
}

func decodePred(d *Decoder) *bpred.State {
	p := &bpred.State{}
	n := int(d.U32())
	if d.err2(n, "pht") {
		p.PHT = append([]uint8(nil), d.buf[d.off:d.off+n]...)
		d.off += n
	}
	p.GHR = d.U32()
	nb := int(d.U32())
	p.BTB = make([]int32, 0, nb)
	for i := 0; i < nb && d.Err() == nil; i++ {
		p.BTB = append(p.BTB, d.I32())
	}
	p.BTBTagged = make([]int32, 0, nb)
	for i := 0; i < nb && d.Err() == nil; i++ {
		p.BTBTagged = append(p.BTBTagged, d.I32())
	}
	nr := int(d.U32())
	p.RAS = make([]int32, 0, nr)
	for i := 0; i < nr && d.Err() == nil; i++ {
		p.RAS = append(p.RAS, d.I32())
	}
	p.RASTop = d.Int()
	p.Lookups = d.I64()
	p.Mispredicts = d.I64()
	return p
}
