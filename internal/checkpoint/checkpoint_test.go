package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"fleaflicker/internal/bpred"
	"fleaflicker/internal/mem"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	img := mem.NewImage()
	img.Write(0x10, 8, 0xdeadbeefcafef00d)
	img.Write(0x2000, 4, 42)
	img.Write(0xfff, 2, 7) // straddles a page boundary

	s := &Snapshot{
		Kind:      KindMachine,
		Model:     "2P",
		Program:   "bench.micro",
		Cycle:     12345,
		Retired:   678,
		PC:        13,
		Mem:       img.Snapshot(),
		StoreN:    3,
		StoreHash: 0x1122334455667788,
		StorePrefix: []mem.StoreCommit{
			{Addr: 0x10, Size: 8, Val: 0xdeadbeefcafef00d},
			{Addr: 0x2000, Size: 4, Val: 42},
			{Addr: 0xfff, Size: 2, Val: 7},
		},
		Loads:         10,
		Stores:        3,
		Branches:      4,
		FeNextID:      700,
		FeFetchStalls: 9,
	}
	s.Regs[0] = 0
	s.Regs[3] = 0xffffffffffffffff
	s.Regs[7] = 123
	s.ByClass[0] = 100
	s.Pred = bpred.New(bpred.DefaultConfig()).CaptureState()
	s.Pred.GHR = 0x2a

	h := mem.NewHierarchy(mem.DefaultConfig())
	h.Load(0x40, 0)
	s.Hier = h.CaptureState()

	// Insert sections and counters out of order: serialization must not
	// depend on insertion order.
	s.AddSection("zeta", []byte{9, 9})
	s.AddSection("alpha", []byte{1, 2, 3})
	s.SetCounters([]Counter{{"z.count", 5}, {"a.count", 1}})
	return s
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Snapshot
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// Compare everything except Mem (pointer identity differs); then compare
	// memory contents page by page.
	want := *s
	gotCopy := got
	wantMem, gotMem := want.Mem, gotCopy.Mem
	want.Mem, gotCopy.Mem = nil, nil
	if !reflect.DeepEqual(want, gotCopy) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", gotCopy, want)
	}
	if wantMem.Pages() != gotMem.Pages() {
		t.Fatalf("page count: got %d want %d", gotMem.Pages(), wantMem.Pages())
	}
	if d := mem.NewImage(); true {
		a, b := wantMem.Image(), gotMem.Image()
		_ = d
		if !a.Equal(b) {
			t.Fatalf("memory contents differ after round trip")
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Two snapshots with identical logical content but different construction
	// order must encode to identical bytes.
	a := sampleSnapshot(t)
	b := sampleSnapshot(t)
	b.Sections = nil
	b.AddSection("alpha", []byte{1, 2, 3})
	b.AddSection("zeta", []byte{9, 9})
	b.SetCounters([]Counter{{"a.count", 1}, {"z.count", 5}})

	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("encoding depends on construction order (%d vs %d bytes)", len(ab), len(bb))
	}
	// And repeated marshals are stable.
	ab2, _ := a.MarshalBinary()
	if !bytes.Equal(ab, ab2) {
		t.Fatal("re-marshal differs")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Snapshot
	if err := s.UnmarshalBinary([]byte("nope")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	good, _ := sampleSnapshot(t).MarshalBinary()
	if err := s.UnmarshalBinary(good[:len(good)/2]); err == nil {
		t.Fatal("expected truncation error")
	}
	trailing := append(append([]byte(nil), good...), 0)
	if err := s.UnmarshalBinary(trailing); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestSectionLookup(t *testing.T) {
	var s Snapshot
	s.AddSection("b", []byte{2})
	s.AddSection("a", []byte{1})
	s.AddSection("b", []byte{3}) // replace
	if d, ok := s.Section("b"); !ok || d[0] != 3 {
		t.Fatalf("Section(b) = %v %v", d, ok)
	}
	if _, ok := s.Section("missing"); ok {
		t.Fatal("found a missing section")
	}
	if len(s.Sections) != 2 || s.Sections[0].Name != "a" {
		t.Fatalf("sections unsorted or duplicated: %+v", s.Sections)
	}
}
