// Package pipeline provides the machinery shared by every timed machine
// model: dynamic instruction records, the fetch/decode front end (IPG, ROT,
// EXP, DEC stages of Figure 3) with its branch predictor and I-cache timing,
// and the common stage-offset constants.
package pipeline

import (
	"fleaflicker/internal/bpred"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

// Stage offsets relative to the cycle an issue group dispatches (REG).
const (
	// EXEOffset is when execution begins.
	EXEOffset = 1
	// DETOffset is when branch mispredictions and exceptions are
	// detected; redirects are signalled this many cycles after dispatch.
	DETOffset = 2
	// WRBOffset is when results are architecturally written.
	WRBOffset = 3
)

// DynInst is one dynamic (fetched) instruction. The front end fills in the
// identity and prediction fields; machine models use the execution fields
// they need (the two-pass machine uses all of them — they are its coupling
// queue and result-store state).
type DynInst struct {
	ID uint64
	PC int32
	In *isa.Inst

	// Front-end prediction state.
	PredTaken    bool  // a branch the front end predicted/knew taken
	NextPC       int32 // pc the front end continued fetching at after this inst
	HasCP        bool  // CP holds a direction-predictor checkpoint
	CP           bpred.Checkpoint
	NoPrediction bool // indirect branch with no predicted target: fetch stalled behind it

	// Execution state (two-pass CQ/CRS fields; the baseline uses a
	// subset).
	Deferred  bool      // suppressed in the A-pipe, to execute in the B-pipe
	Done      bool      // produced a (possibly in-flight) result in the A-pipe
	ReadyAt   int64     // cycle the A-initiated result arrives (dangling if still future at merge)
	Val       isa.Value // the result value
	PredOn    bool      // qualifying predicate evaluated true
	AddrKnown bool      // memory ops: effective address computed
	Addr      uint32
	Size      int
	Level     mem.Level // cache level that served an initiated load

	// Branch outcome, filled at resolution.
	BrResolved bool
	BrTaken    bool
	BrTarget   int32
}

// IsBranch reports whether the instruction can redirect fetch.
func (d *DynInst) IsBranch() bool { return d.In.Op.IsBranch() }

// Group is one fetched issue group.
type Group struct {
	Insts   []*DynInst
	FetchPC int32
	// AvailAt is the cycle the group becomes available for dispatch
	// (fetch cycle + front-end depth + any I-cache miss penalty).
	AvailAt int64
}

// Config sizes the front end.
type Config struct {
	// Depth is the front-end pipeline length in cycles (IPG through DEC;
	// 5 models the paper's "one stage longer than Itanium 2" machine).
	Depth int
	// QueueCap is the fetched-group buffer capacity in groups.
	QueueCap int
}

// DefaultConfig returns the front end of the simulated machine.
func DefaultConfig() Config { return Config{Depth: 5, QueueCap: 8} }

// FrontEnd fetches issue groups along the predicted path, one group per
// cycle, modelling I-cache latency and branch prediction. Machines consume
// groups via Head/Pop and repair wrong paths via Redirect.
//
// The fetched-group buffer is a fixed ring of QueueCap Group slots whose
// instruction slices are reused, and DynInst records come from a per-machine
// Arena, so steady-state fetch allocates nothing. A popped group (and its
// DynInsts) stays valid until the next Tick; machines must consume it within
// the cycle that pops it and return the DynInsts to Arena() when they retire
// or are squashed.
type FrontEnd struct {
	cfg   Config
	prog  *program.Program
	hier  *mem.Hierarchy
	pred  *bpred.Predictor
	arena *Arena

	pc          int32
	nextFetchAt int64
	stalled     bool    // fetch blocked behind a no-prediction indirect branch
	halted      bool    // fetch reached a halt
	queue       []Group // ring storage, len == cfg.QueueCap
	qhead, qlen int

	nextID uint64

	// FetchStallCycles counts cycles fetch could not proceed because of
	// an I-cache miss, for reports.
	FetchStallCycles int64
}

// NewFrontEnd builds a front end starting at the program entry. A non-nil
// arena supplies (and outlives) the DynInst storage — callers that simulate
// many short programs back to back (the differential fuzzer's inner loop)
// pass one shared arena so each run reuses the previous run's records
// instead of growing fresh slabs. nil allocates a private arena.
func NewFrontEnd(cfg Config, prog *program.Program, hier *mem.Hierarchy, pred *bpred.Predictor, arena *Arena) *FrontEnd {
	if arena == nil {
		arena = NewArena()
	}
	return &FrontEnd{
		cfg: cfg, prog: prog, hier: hier, pred: pred,
		arena: arena,
		queue: make([]Group, cfg.QueueCap),
		pc:    prog.Entry, nextID: 1,
	}
}

// Predictor exposes the branch predictor for resolution updates.
func (f *FrontEnd) Predictor() *bpred.Predictor { return f.pred }

// Arena exposes the DynInst allocator. Machines return retired and squashed
// instruction records to it so the cycle loop stays allocation-free.
func (f *FrontEnd) Arena() *Arena { return f.arena }

// Tick advances fetch by one cycle: at most one issue group is fetched along
// the predicted path.
//
//flea:hotpath
func (f *FrontEnd) Tick(now int64) {
	if f.stalled || f.halted || now < f.nextFetchAt || f.qlen >= f.cfg.QueueCap {
		return
	}
	if f.pc < 0 || int(f.pc) >= len(f.prog.Insts) {
		// Fetch wandered off the program (wrong-path); stall until a
		// redirect arrives.
		f.stalled = true
		return
	}
	start := f.pc
	end := f.prog.GroupBounds(start)
	g := &f.queue[(f.qhead+f.qlen)%f.cfg.QueueCap]
	//flea:handoff the slot's previous records were handed to the machine at Pop; only the backing array is reused
	g.Insts = g.Insts[:0]
	g.FetchPC = start
	next := end // sequential fall-through
	for pc := start; pc < end; pc++ {
		in := &f.prog.Insts[pc]
		d := f.arena.Get()
		d.ID, d.PC, d.In, d.NextPC = f.nextID, pc, in, pc+1
		f.nextID++
		g.Insts = append(g.Insts, d)
		if in.Op == isa.OpHalt {
			f.halted = true
			next = end
			break
		}
		if !in.Op.IsBranch() {
			continue
		}
		taken, target, done := f.predictBranch(d)
		if done { // fetch stalls behind an unpredictable indirect
			f.stalled = true
			next = pc + 1 // placeholder; fetch is stalled anyway
			break
		}
		if taken {
			d.PredTaken = true
			d.NextPC = target
			next = target
			break // a predicted-taken branch truncates the group
		}
	}
	if len(g.Insts) > 0 {
		last := g.Insts[len(g.Insts)-1]
		if !last.PredTaken && !f.halted && !f.stalled {
			last.NextPC = next
		}
	}

	// I-cache timing: probe every I-line the delivered group touches.
	extra := 0
	lineBytes := uint32(f.hier.LineBytesI())
	firstLine := program.InstAddr(start) &^ (lineBytes - 1)
	lastLine := program.InstAddr(start+int32(len(g.Insts))-1) &^ (lineBytes - 1)
	for line := firstLine; ; line += lineBytes {
		lat, _ := f.hier.Fetch(line, now)
		if e := lat - f.hier.Config().L1I.Latency; e > extra {
			extra = e
		}
		if line == lastLine {
			break
		}
	}
	g.AvailAt = now + int64(f.cfg.Depth+extra)
	f.nextFetchAt = now + 1 + int64(extra)
	f.FetchStallCycles += int64(extra)
	f.qlen++
	f.pc = next
}

// predictBranch predicts direction and target for branch d at fetch.
// done=true means fetch must stall (indirect with no target prediction).
//
//flea:hotpath
func (f *FrontEnd) predictBranch(d *DynInst) (taken bool, target int32, done bool) {
	in := d.In
	switch in.Op {
	case isa.OpBr:
		if in.Pred == isa.P(0) {
			return true, in.Target, false // unconditional
		}
		t, cp := f.pred.PredictCond(d.PC)
		d.HasCP, d.CP = true, cp
		return t, in.Target, false
	case isa.OpBrCall:
		f.pred.PushRAS(d.PC + 1)
		return true, in.Target, false
	case isa.OpBrRet:
		if t, ok := f.pred.PopRAS(); ok {
			return true, t, false
		}
		d.NoPrediction = true
		return false, 0, true
	case isa.OpBrInd:
		if t, ok := f.pred.PredictIndirect(d.PC); ok {
			return true, t, false
		}
		d.NoPrediction = true
		return false, 0, true
	}
	return false, 0, false
}

// Head returns the oldest fetched group if it has reached the dispersal
// point by now, else nil. The returned group lives in the fetch ring: it
// remains valid after Pop only until the next Tick.
//
//flea:hotpath
func (f *FrontEnd) Head(now int64) *Group {
	if f.qlen == 0 {
		return nil
	}
	g := &f.queue[f.qhead]
	if g.AvailAt > now {
		return nil
	}
	return g
}

// Pending reports whether any group is fetched but not yet available —
// distinguishing "front end refilling" from "fetch stalled empty".
func (f *FrontEnd) Pending() bool { return f.qlen > 0 }

// Pop consumes the head group. Ownership of its DynInst records passes to
// the caller, which must eventually return them to Arena().
//
//flea:hotpath
func (f *FrontEnd) Pop() {
	f.qhead = (f.qhead + 1) % f.cfg.QueueCap
	f.qlen--
}

// Redirect flushes all fetched groups (returning their instruction records
// to the arena) and restarts fetch at pc on the next cycle. Machines call it
// on branch misprediction (at resolution time), on indirect-branch
// resolution when fetch was stalled, and on store-conflict recovery.
//
//flea:hotpath
func (f *FrontEnd) Redirect(pc int32, now int64) {
	for i := 0; i < f.qlen; i++ {
		g := &f.queue[(f.qhead+i)%f.cfg.QueueCap]
		f.arena.PutAll(g.Insts)
		g.Insts = g.Insts[:0]
	}
	f.qlen = 0
	f.pc = pc
	f.nextFetchAt = now + 1
	f.stalled = false
	f.halted = false
}

// StreamState returns the dynamic-ID allocator position and the accumulated
// fetch-stall count, the two pieces of front-end state that survive a
// Redirect and so must be carried across a machine checkpoint.
func (f *FrontEnd) StreamState() (nextID uint64, fetchStalls int64) {
	return f.nextID, f.FetchStallCycles
}

// RestoreStream reinstates the ID allocator and fetch-stall count captured by
// StreamState, so a checkpoint-resumed machine numbers its dynamic
// instructions exactly as the producing run did.
func (f *FrontEnd) RestoreStream(nextID uint64, fetchStalls int64) {
	f.nextID = nextID
	f.FetchStallCycles = fetchStalls
}

// Stalled reports whether fetch is blocked waiting for an indirect branch to
// resolve.
func (f *FrontEnd) Stalled() bool { return f.stalled }

// Halted reports whether fetch has delivered a halt instruction (and
// stopped).
func (f *FrontEnd) Halted() bool { return f.halted }
