package pipeline

import (
	"testing"

	"fleaflicker/internal/bpred"
	"fleaflicker/internal/isa"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
)

func newFE(t *testing.T, src string) *FrontEnd {
	t.Helper()
	p, err := program.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	h := mem.NewHierarchy(mem.DefaultConfig())
	b := bpred.New(bpred.DefaultConfig())
	return NewFrontEnd(DefaultConfig(), p, h, b, nil)
}

func TestFetchDeliversGroupsInOrder(t *testing.T) {
	fe := newFE(t, `
        movi r1 = 1
        movi r2 = 2 ;;
        movi r3 = 3 ;;
        halt ;;
`)
	now := int64(0)
	fe.Tick(now)
	if fe.Head(now) != nil {
		t.Errorf("group available same cycle as fetch; front end depth ignored")
	}
	// Advance past the front-end depth plus the compulsory I-miss.
	var g *Group
	for ; g == nil && now < 400; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil {
		t.Fatal("no group ever delivered")
	}
	if len(g.Insts) != 2 || g.Insts[0].PC != 0 || g.Insts[1].PC != 1 {
		t.Fatalf("first group wrong: %+v", g)
	}
	fe.Pop()
	// Second group follows.
	g = nil
	for ; g == nil && now < 800; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil || len(g.Insts) != 1 || g.Insts[0].PC != 2 {
		t.Fatalf("second group wrong: %+v", g)
	}
	// IDs are strictly increasing.
	if g.Insts[0].ID <= 2 {
		t.Errorf("IDs not monotonic")
	}
}

func TestWarmFetchLatencyIsDepth(t *testing.T) {
	fe := newFE(t, `
a:      movi r1 = 1 ;;
        br a ;;
`)
	// Warm the I-cache.
	for now := int64(0); now < 300; now++ {
		fe.Tick(now)
		if g := fe.Head(now); g != nil {
			fe.Pop()
		}
	}
	fe.Redirect(0, 1000)
	fe.Tick(1001)
	g := fe.Head(1001 + int64(DefaultConfig().Depth))
	if g == nil {
		t.Fatalf("warm group not available after Depth cycles")
	}
	if g.AvailAt != 1001+int64(DefaultConfig().Depth) {
		t.Errorf("AvailAt = %d, want %d", g.AvailAt, 1001+int64(DefaultConfig().Depth))
	}
}

func TestPredictedTakenBranchTruncatesGroup(t *testing.T) {
	fe := newFE(t, `
        movi r1 = 1
        br tgt
        movi r2 = 2 ;;
        movi r3 = 3 ;;
tgt:    halt ;;
`)
	var g *Group
	for now := int64(0); g == nil && now < 400; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil {
		t.Fatal("no group delivered")
	}
	// Unconditional branch: group truncated after it, movi r2 not fetched.
	if len(g.Insts) != 2 || g.Insts[1].In.Op != isa.OpBr {
		t.Fatalf("group not truncated at taken branch: %d insts", len(g.Insts))
	}
	if !g.Insts[1].PredTaken || g.Insts[1].NextPC != 4 {
		t.Errorf("branch prediction fields wrong: %+v", g.Insts[1])
	}
	fe.Pop()
	g = nil
	for now := int64(400); g == nil && now < 800; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil || g.Insts[0].In.Op != isa.OpHalt {
		t.Fatalf("fetch did not follow the taken branch")
	}
}

func TestHaltStopsFetch(t *testing.T) {
	fe := newFE(t, `
        halt ;;
        movi r1 = 1 ;;
`)
	for now := int64(0); now < 300; now++ {
		fe.Tick(now)
	}
	if !fe.Halted() {
		t.Errorf("front end should halt after fetching halt")
	}
	if fe.Head(299) == nil {
		t.Fatalf("halt group missing")
	}
	fe.Pop()
	if fe.Head(299) != nil || fe.Pending() {
		t.Errorf("fetch continued past halt")
	}
}

func TestRedirectFlushesAndRestarts(t *testing.T) {
	fe := newFE(t, `
        movi r1 = 1 ;;
        movi r2 = 2 ;;
        movi r3 = 3 ;;
        halt ;;
`)
	for now := int64(0); now < 300; now++ {
		fe.Tick(now)
	}
	if !fe.Pending() {
		t.Fatal("queue empty before redirect")
	}
	fe.Redirect(3, 300)
	if fe.Pending() {
		t.Errorf("redirect did not flush the queue")
	}
	var g *Group
	for now := int64(301); g == nil && now < 600; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil || g.Insts[0].PC != 3 {
		t.Fatalf("fetch did not restart at redirect target")
	}
}

func TestIndirectWithoutPredictionStallsFetch(t *testing.T) {
	fe := newFE(t, `
        movi r1 = @tgt ;;
        br.ind r1 ;;
        movi r2 = 2 ;;
tgt:    halt ;;
`)
	var sawInd bool
	for now := int64(0); now < 400; now++ {
		fe.Tick(now)
		if g := fe.Head(now); g != nil {
			for _, d := range g.Insts {
				if d.In.Op == isa.OpBrInd {
					sawInd = true
					if !d.NoPrediction {
						t.Errorf("cold indirect should have NoPrediction")
					}
				}
			}
			fe.Pop()
		}
	}
	if !sawInd {
		t.Fatal("indirect branch never fetched")
	}
	if !fe.Stalled() {
		t.Fatalf("fetch should stall behind unpredictable indirect")
	}
	// Resolution redirects and fetch resumes.
	fe.Predictor().UpdateIndirect(1, 3)
	fe.Redirect(3, 400)
	var g *Group
	for now := int64(401); g == nil && now < 700; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil || g.Insts[0].PC != 3 {
		t.Fatalf("fetch did not resume after indirect resolution")
	}
}

func TestConditionalBranchGetsCheckpoint(t *testing.T) {
	fe := newFE(t, `
        cmp.lt p1 = r1, r2 ;;
        (p1) br out ;;
        movi r3 = 1 ;;
out:    halt ;;
`)
	var br *DynInst
	for now := int64(0); now < 400 && br == nil; now++ {
		fe.Tick(now)
		if g := fe.Head(now); g != nil {
			for _, d := range g.Insts {
				if d.In.Op == isa.OpBr {
					br = d
				}
			}
			fe.Pop()
		}
	}
	if br == nil {
		t.Fatal("conditional branch never fetched")
	}
	if !br.HasCP {
		t.Errorf("conditional branch missing predictor checkpoint")
	}
}

func TestICacheMissDelaysGroup(t *testing.T) {
	fe := newFE(t, `
        movi r1 = 1 ;;
        halt ;;
`)
	fe.Tick(0)
	g := fe.Head(int64(DefaultConfig().Depth))
	if g != nil {
		t.Errorf("cold fetch should be delayed by the I-cache miss")
	}
	if fe.FetchStallCycles == 0 {
		t.Errorf("I-miss cycles not recorded")
	}
}

func TestQueueCapBoundsFetch(t *testing.T) {
	fe := newFE(t, `
a:      movi r1 = 1 ;;
        br a ;;
`)
	for now := int64(0); now < 2000; now++ {
		fe.Tick(now) // never popped
	}
	if fe.qlen > DefaultConfig().QueueCap {
		t.Errorf("queue grew to %d, cap %d", fe.qlen, DefaultConfig().QueueCap)
	}
}

func TestWrongPathOffEndStalls(t *testing.T) {
	// A predicted path can run off the end of the program; fetch must
	// stall (not panic) until redirected.
	p := program.MustAssemble("offend", `
        movi r1 = 1 ;;
        halt ;;
`)
	h := mem.NewHierarchy(mem.DefaultConfig())
	b := bpred.New(bpred.DefaultConfig())
	fe := NewFrontEnd(DefaultConfig(), p, h, b, nil)
	fe.Redirect(99, 0) // simulate a wrong-path target out of range
	for now := int64(1); now < 50; now++ {
		fe.Tick(now)
	}
	if !fe.Stalled() {
		t.Errorf("fetch should stall off the program end")
	}
	fe.Redirect(0, 50)
	var g *Group
	for now := int64(51); g == nil && now < 400; now++ {
		fe.Tick(now)
		g = fe.Head(now)
	}
	if g == nil {
		t.Fatalf("fetch did not recover from off-end stall")
	}
}

func TestCallPushesRASAndRetUsesIt(t *testing.T) {
	fe := newFE(t, `
        br.call r63 = fn ;;
        halt ;;
fn:     nop ;;
        br.ret r63 ;;
`)
	var sawRet bool
	for now := int64(0); now < 600 && !sawRet; now++ {
		fe.Tick(now)
		if g := fe.Head(now); g != nil {
			for _, d := range g.Insts {
				if d.In.Op == isa.OpBrRet {
					sawRet = true
					if d.NoPrediction {
						t.Errorf("return should be predicted via the RAS")
					}
					if !d.PredTaken || d.NextPC != 1 {
						t.Errorf("RAS prediction wrong: taken=%v next=%d", d.PredTaken, d.NextPC)
					}
				}
			}
			fe.Pop()
		}
	}
	if !sawRet {
		t.Fatal("return never fetched")
	}
}

func TestIndirectUsesBTBAfterTraining(t *testing.T) {
	fe := newFE(t, `
        movi r1 = @tgt ;;
        br.ind r1 ;;
tgt:    halt ;;
`)
	fe.Predictor().UpdateIndirect(1, 2) // pre-trained BTB
	var saw bool
	for now := int64(0); now < 400 && !saw; now++ {
		fe.Tick(now)
		if g := fe.Head(now); g != nil {
			for _, d := range g.Insts {
				if d.In.Op == isa.OpBrInd {
					saw = true
					if d.NoPrediction || d.NextPC != 2 {
						t.Errorf("trained BTB not used: noPred=%v next=%d", d.NoPrediction, d.NextPC)
					}
				}
			}
			fe.Pop()
		}
	}
	if !saw {
		t.Fatal("indirect never fetched")
	}
	if fe.Stalled() {
		t.Errorf("fetch should not stall with a BTB hit")
	}
}

func TestHeadNotAvailableBeforeAvailAt(t *testing.T) {
	fe := newFE(t, `
        movi r1 = 1 ;;
        halt ;;
`)
	fe.Tick(0)
	if !fe.Pending() {
		t.Fatal("nothing fetched")
	}
	if fe.Head(0) != nil {
		t.Errorf("group visible before its AvailAt")
	}
}
