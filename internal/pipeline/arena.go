package pipeline

// arenaSlab is the number of DynInst records allocated per slab. The live
// set of a machine is bounded by its coupling-queue and fetch-queue
// capacities, so a handful of slabs cover steady state and the freelist
// absorbs all further traffic.
const arenaSlab = 64

// Arena recycles DynInst records so the steady-state cycle loop performs no
// heap allocation per fetched instruction. The front end allocates from it
// in Tick; machines return records when an instruction retires or is
// squashed (the front end itself returns the records of groups it flushes
// on Redirect).
//
// An arena belongs to one machine and is not safe for concurrent use —
// machines are single-goroutine, so no sync.Pool-style synchronization is
// needed. A record handed to Put must not be referenced again: it is reused,
// fully reset, by a later Get.
type Arena struct {
	free []*DynInst
}

// NewArena returns an empty arena; slabs are allocated on demand.
func NewArena() *Arena { return &Arena{} }

// Get returns a zeroed DynInst, reusing a recycled record when one is free.
//
//flea:hotpath
//flea:inline
func (a *Arena) Get() *DynInst {
	n := len(a.free)
	//flea:coldpath slab allocation amortizes across the run; steady state reuses the freelist
	if n == 0 {
		slab := make([]DynInst, arenaSlab)
		for i := range slab[:arenaSlab-1] {
			a.free = append(a.free, &slab[i])
		}
		return &slab[arenaSlab-1]
	}
	d := a.free[n-1]
	a.free = a.free[:n-1]
	*d = DynInst{}
	return d
}

// Put returns one record to the freelist.
//
//flea:hotpath
//flea:inline
func (a *Arena) Put(d *DynInst) { a.free = append(a.free, d) }

// PutAll returns every record in ds to the freelist.
//
//flea:hotpath
//flea:inline
func (a *Arena) PutAll(ds []*DynInst) { a.free = append(a.free, ds...) }
