// Command flealint is the repository's domain-specific vet tool. It bundles
// nine analyzers that enforce, at compile time, the invariants the runtime
// tests (steady-state allocation freedom, byte-determinism, zero-overhead
// tracing, copy-on-write snapshot safety, serving-layer locking) can only
// catch after the fact:
//
//	hotalloc          no allocating constructs in //flea:hotpath functions
//	nondeterminism    no map-iteration order, wall-clock time or global
//	                  randomness in simulation packages
//	traceguard        trace emission behind Enabled() guards; no registry
//	                  lookups on hot paths
//	arenadiscipline   DynInst records recycled or handed off on every path
//	statname          unique, constant metric registration names
//	snapshotalias     no page references held across copy-on-write snapshot
//	                  barriers; page stores only through the fault path
//	snapshotprotocol  snapshot encoding only at the drain barrier;
//	                  //flea:specentry speculation suppressed while draining
//	guardedby         //flea:guardedby(mu) lockset discipline and
//	                  //flea:atomic access discipline on annotated fields
//	ctxloop           unbounded worker/cycle loops poll their context or are
//	                  //flea:bounded
//
// The last four are dataflow analyses over per-function control-flow graphs
// (see internal/analysis/ssaflow). The analyzer scopes live in one registry,
// internal/analysis/scope, whose completeness test guarantees every internal
// package is either analyzed or exempted with a reason.
//
// It speaks the go vet driver protocol; run it over the module with
//
//	go build -o bin/flealint ./cmd/flealint
//	go vet -vettool=bin/flealint ./...
//
// or simply `make lint` (part of `make ci`).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"fleaflicker/internal/analysis/arenadiscipline"
	"fleaflicker/internal/analysis/ctxloop"
	"fleaflicker/internal/analysis/guardedby"
	"fleaflicker/internal/analysis/hotalloc"
	"fleaflicker/internal/analysis/nondeterminism"
	"fleaflicker/internal/analysis/snapshotalias"
	"fleaflicker/internal/analysis/snapshotprotocol"
	"fleaflicker/internal/analysis/statname"
	"fleaflicker/internal/analysis/traceguard"
)

func main() {
	unitchecker.Main(
		hotalloc.Analyzer,
		nondeterminism.Analyzer,
		traceguard.Analyzer,
		arenadiscipline.Analyzer,
		statname.Analyzer,
		snapshotalias.Analyzer,
		snapshotprotocol.Analyzer,
		guardedby.Analyzer,
		ctxloop.Analyzer,
	)
}
