// Command flealint is the repository's domain-specific vet tool. It bundles
// five analyzers that enforce, at compile time, the invariants the runtime
// tests (steady-state allocation freedom, byte-determinism, zero-overhead
// tracing) can only catch after the fact:
//
//	hotalloc         no allocating constructs in //flea:hotpath functions
//	nondeterminism   no map-iteration order, wall-clock time or global
//	                 randomness in simulation packages
//	traceguard       trace emission behind Enabled() guards; no registry
//	                 lookups on hot paths
//	arenadiscipline  DynInst records recycled or handed off on every path
//	statname         unique, constant metric registration names
//
// It speaks the go vet driver protocol; run it over the module with
//
//	go build -o bin/flealint ./cmd/flealint
//	go vet -vettool=bin/flealint ./...
//
// or simply `make lint` (part of `make ci`).
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"fleaflicker/internal/analysis/arenadiscipline"
	"fleaflicker/internal/analysis/hotalloc"
	"fleaflicker/internal/analysis/nondeterminism"
	"fleaflicker/internal/analysis/statname"
	"fleaflicker/internal/analysis/traceguard"
)

func main() {
	unitchecker.Main(
		hotalloc.Analyzer,
		nondeterminism.Analyzer,
		traceguard.Analyzer,
		arenadiscipline.Analyzer,
		statname.Analyzer,
	)
}
