// Command fleaflow runs experiment campaigns as cached DAGs: every paper
// figure (and the differential-fuzzing sweep) is a pipeline of
// content-addressed stages, so reruns skip completed work and an
// interrupted campaign resumes from its artifact store.
//
// Usage:
//
//	fleaflow list
//	fleaflow graph <pipeline> [-dot]
//	fleaflow run <pipeline> [-store dir] [-service URL] [-par n] [-fresh]
//	             [-resume] [-out dir] [-experiments path]
//	             [-fuzz-programs n] [-fuzz-shards n] [-fuzz-smoke]
//
// `run` is SIGINT-safe: interrupting a campaign cancels in-flight stages,
// keeps every completed artifact, and a rerun (resume is the default —
// that is what content addressing buys) redoes only unfinished work.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fleaflicker/internal/fleaflow"
	"fleaflicker/internal/metrics"
	"fleaflicker/internal/service/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleaflow:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  fleaflow list                  list built-in pipelines
  fleaflow graph <pipeline>      render the stage DAG (-dot for Graphviz)
  fleaflow run <pipeline>        execute a pipeline against the artifact store
`)
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return list()
	case "graph":
		return graphCmd(args[1:])
	case "run":
		return runCmd(ctx, args[1:])
	case "help", "-h", "-help", "--help":
		usage()
		return nil
	}
	usage()
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func list() error {
	for _, name := range fleaflow.BuiltinNames() {
		p, err := fleaflow.Builtin(name, fleaflow.Env{})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %2d stages  %s\n", name, len(p.Stages), fleaflow.BuiltinDoc(name))
	}
	return nil
}

// envFlags registers the pipeline-shaping flags shared by graph and run,
// returning a builder for the resulting Env.
func envFlags(fs *flag.FlagSet) func() (fleaflow.Env, error) {
	var (
		serviceURL   = fs.String("service", "", "run simulation stages through this fleasimd daemon or coordinator (POST /v1/jobs) instead of in-process")
		fuzzPrograms = fs.Int("fuzz-programs", 0, "fuzz-campaign: program budget (0 = 200)")
		fuzzShards   = fs.Int("fuzz-shards", 0, "fuzz-campaign: lattice shards (0 = 4)")
		fuzzSmoke    = fs.Bool("fuzz-smoke", false, "fuzz-campaign: four-cell smoke lattice and small programs")
	)
	return func() (fleaflow.Env, error) {
		env := fleaflow.Env{
			FuzzPrograms: *fuzzPrograms,
			FuzzShards:   *fuzzShards,
			FuzzSmoke:    *fuzzSmoke,
		}
		if *serviceURL != "" {
			env.Service = client.New(*serviceURL)
		}
		return env, nil
	}
}

func graphCmd(args []string) error {
	fs := flag.NewFlagSet("fleaflow graph", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of the ASCII listing")
	buildEnv := envFlags(fs)
	name, err := pipelineArg(fs, args)
	if err != nil {
		return err
	}
	env, err := buildEnv()
	if err != nil {
		return err
	}
	p, err := fleaflow.Builtin(name, env)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(fleaflow.DOT(p))
	} else {
		fmt.Print(fleaflow.ASCII(p))
	}
	return nil
}

func runCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleaflow run", flag.ContinueOnError)
	var (
		storeDir = fs.String("store", ".fleaflow", "artifact store directory")
		par      = fs.Int("par", runtime.GOMAXPROCS(0), "max concurrently executing stages")
		fresh    = fs.Bool("fresh", false, "ignore existing artifacts; re-run every stage")
		resume   = fs.Bool("resume", false, "resume an interrupted campaign (the default behaviour; rejects -fresh)")
		outDir   = fs.String("out", "", "write campaign outputs (CSVs, BENCH_<rev>.json) to this directory")
		expPath  = fs.String("experiments", "", "patch this EXPERIMENTS.md's fleaflow sections (figure6 only)")
		quiet    = fs.Bool("q", false, "suppress per-stage progress lines")
	)
	buildEnv := envFlags(fs)
	name, err := pipelineArg(fs, args)
	if err != nil {
		return err
	}
	if *resume && *fresh {
		return fmt.Errorf("-resume and -fresh conflict: resume means reusing artifacts")
	}
	env, err := buildEnv()
	if err != nil {
		return err
	}
	p, err := fleaflow.Builtin(name, env)
	if err != nil {
		return err
	}
	store, err := fleaflow.OpenStore(*storeDir)
	if err != nil {
		return err
	}

	opts := fleaflow.Options{
		Store:       store,
		Parallelism: *par,
		Fresh:       *fresh,
		Registry:    metrics.NewRegistry(),
	}
	if !*quiet {
		start := time.Now()
		opts.Observer = func(ev fleaflow.Event) {
			switch ev.Status {
			case fleaflow.StatusFailed:
				fmt.Printf("%8.1fs  %-7s %-18s %s\n", time.Since(start).Seconds(), ev.Status, ev.Stage, ev.Err)
			case fleaflow.StatusRunning, fleaflow.StatusDone, fleaflow.StatusCached, fleaflow.StatusParked:
				fmt.Printf("%8.1fs  %-7s %s\n", time.Since(start).Seconds(), ev.Status, ev.Stage)
			}
		}
	}

	start := time.Now()
	rep, runErr := fleaflow.Run(ctx, p, opts)
	if rep != nil {
		fmt.Printf("%s: %d ran, %d cached, %d failed, %d parked in %s\n",
			rep.Pipeline, rep.Ran, rep.Cached, rep.Failed, rep.Parked,
			time.Since(start).Round(10*time.Millisecond))
	}
	if runErr != nil {
		return runErr
	}
	return finish(name, store, rep, *outDir, *expPath)
}

// pipelineArg parses fs against args where the pipeline name may precede
// the flags (`run figure6 -par 2`) or be the sole operand.
func pipelineArg(fs *flag.FlagSet, args []string) (string, error) {
	if len(args) == 0 {
		return "", fmt.Errorf("missing pipeline name (try: fleaflow list)")
	}
	name := ""
	if !strings.HasPrefix(args[0], "-") {
		name = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if name == "" {
		if fs.NArg() == 0 {
			return "", fmt.Errorf("missing pipeline name (try: fleaflow list)")
		}
		name = fs.Arg(0)
	}
	return name, nil
}

// finish post-processes a completed campaign: prints its terminal document
// and, for figure6, writes the EXPERIMENTS.md sections, CSVs, and the
// BENCH-style JSON snapshot.
func finish(name string, store *fleaflow.Store, rep *fleaflow.Report, outDir, expPath string) error {
	switch name {
	case "figure6":
		return finishFigure6(store, rep, outDir, expPath)
	case "fuzz-campaign":
		return printDoc(store, rep, "divergence-report")
	case "smoke":
		return printDoc(store, rep, "summary")
	}
	return nil
}

func printDoc(store *fleaflow.Store, rep *fleaflow.Report, stage string) error {
	key := rep.Key(stage)
	if key == "" {
		return fmt.Errorf("stage %s produced no artifact", stage)
	}
	var d struct {
		Markdown string `json:"markdown"`
	}
	if err := store.Get(key, &d); err != nil {
		return err
	}
	fmt.Print(d.Markdown)
	return nil
}

func finishFigure6(store *fleaflow.Store, rep *fleaflow.Report, outDir, expPath string) error {
	key := rep.Key("report")
	if key == "" {
		return fmt.Errorf("figure6: report stage produced no artifact")
	}
	var doc fleaflow.Figure6Doc
	if err := store.Get(key, &doc); err != nil {
		return err
	}
	if expPath != "" {
		if err := patchExperiments(expPath, &doc); err != nil {
			return err
		}
		fmt.Printf("patched %s\n", expPath)
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		for _, f := range []string{"fig6.csv", "fig7.csv", "fig8.csv"} {
			path := filepath.Join(outDir, f)
			if err := os.WriteFile(path, []byte(doc.CSV[f]), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		path, err := writeBenchJSON(outDir, doc.Bench)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// benchSnapshot is the BENCH-style JSON written next to the fleabench
// snapshots: per-model simulated-instruction throughput over the verified
// figure6 suite. Revision and timestamp are stamped here, at write-out —
// the orchestrator itself is clock-free, so its artifacts stay
// byte-reproducible.
type benchSnapshot struct {
	Revision   string                `json:"revision"`
	Timestamp  time.Time             `json:"timestamp"`
	GoVersion  string                `json:"go_version"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	Source     string                `json:"source"`
	Benchmarks []string              `json:"benchmarks"`
	Models     []fleaflow.ModelSpeed `json:"models"`
}

func writeBenchJSON(dir string, sum fleaflow.BenchSummary) (string, error) {
	rev := revision()
	snap := benchSnapshot{
		Revision:   rev,
		Timestamp:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Source:     "fleaflow run figure6",
		Benchmarks: sum.Benchmarks,
		Models:     sum.Models,
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", rev))
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// revision names the snapshot: the working tree's short commit hash, or
// "dev" outside a git checkout.
func revision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// EXPERIMENTS.md carries two fleaflow-maintained regions: the
// deterministic campaign tables (byte-reproducible from a clean artifact
// store) and the measured simulator-speed table (honest wall-clock data,
// varies by machine). They are delimited separately so the deterministic
// block can be diffed byte-for-byte across runs.
const (
	detBegin   = "<!-- fleaflow:begin figure6:deterministic -->"
	detEnd     = "<!-- fleaflow:end figure6:deterministic -->"
	speedBegin = "<!-- fleaflow:begin figure6:speed -->"
	speedEnd   = "<!-- fleaflow:end figure6:speed -->"

	flowSection = `## fleaflow: figure campaign (generated)

Everything between the markers below is written by
` + "`fleaflow run figure6 -experiments EXPERIMENTS.md`" + ` — the DAG
orchestrator's rendering of the same tables the sections above discuss.
The deterministic block regenerates byte-for-byte from a clean artifact
store; the speed block is measured wall-clock data and varies by machine.
`
)

func patchExperiments(path string, doc *fleaflow.Figure6Doc) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(raw)
	if !strings.Contains(text, detBegin) {
		if !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		text += "\n" + flowSection + "\n" +
			detBegin + "\n" + detEnd + "\n\n" +
			speedBegin + "\n" + speedEnd + "\n"
	}
	text, err = patchRegion(text, detBegin, detEnd, doc.Deterministic)
	if err != nil {
		return err
	}
	text, err = patchRegion(text, speedBegin, speedEnd,
		"```\n"+strings.TrimRight(doc.Speed, "\n")+"\n```\n")
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(text), 0o644)
}

// patchRegion replaces the text between begin and end markers (exclusive)
// with body, keeping the markers.
func patchRegion(text, begin, end, body string) (string, error) {
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 {
		return "", fmt.Errorf("marker %q or %q missing", begin, end)
	}
	if j < i {
		return "", fmt.Errorf("markers %q and %q out of order", begin, end)
	}
	return text[:i+len(begin)] + "\n" + body + text[j:], nil
}
