// Command fleasim runs a single program on a single machine model and
// prints its statistics. The program is either a named suite benchmark
// (-bench), a seeded random program (-random), or an assembly file.
//
// Usage:
//
//	fleasim [-model base|2P|2Pre|runahead] [-verify] [-sched]
//	        [-feedback N] [-cq N] [-alat N] [-throttle N] [-anticipable]
//	        [-ckpt-every N] [-trace FILE.json] [-jsonl FILE.jsonl]
//	        (-bench NAME | -random SEED | FILE.s)
//	fleasim -repro FILE.flea
//
// -trace writes a Chrome trace_event file (open in about:tracing or
// Perfetto); -jsonl writes one trace event per line as JSON.
//
// -ckpt-every N captures a functional checkpoint every N retired
// instructions during the reference execution and fast-forwards the timed
// run from the last one, verifying the final architectural state as -verify
// does. (Distinct from -checkpoint, which selects the paper's §3.6
// checkpointed A-file branch-recovery microarchitecture.)
//
// -repro replays a .flea reproducer (written by fleafuzz) on every machine
// model at the configured two-pass parameters and prints each model's
// architectural-state diff against the reference executor.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"fleaflicker/internal/core"
	"fleaflicker/internal/mem"
	"fleaflicker/internal/program"
	"fleaflicker/internal/sched"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/workload"
)

func main() {
	var (
		modelName    = flag.String("model", "2P", "machine model: base, 2P, 2Pre, runahead")
		benchName    = flag.String("bench", "", "run a named suite benchmark")
		randomSeed   = flag.Int64("random", -1, "run a generated random program with this seed")
		verify       = flag.Bool("verify", false, "check final state against the reference executor")
		doSched      = flag.Bool("sched", false, "re-schedule the input program before running (files only)")
		feedback     = flag.Int("feedback", 0, "two-pass B->A feedback latency (-1 disables)")
		cqSize       = flag.Int("cq", 64, "two-pass coupling queue size")
		alatCap      = flag.Int("alat", 0, "two-pass ALAT capacity (0 = perfect)")
		throttle     = flag.Int("throttle", 0, "two-pass deferral throttle (0 = off)")
		anticipable  = flag.Bool("anticipable", false, "two-pass: stall on anticipable non-load latencies")
		checkpoint   = flag.Bool("checkpoint", false, "two-pass: checkpointed A-file branch recovery (§3.6)")
		sbSize       = flag.Int("sb", 0, "two-pass: speculative store buffer capacity (0 = unbounded)")
		conflictPred = flag.Bool("conflictpred", false, "two-pass: store-wait conflict predictor (§3.4)")
		ckptEvery    = flag.Int64("ckpt-every", 0, "fast-forward from a functional checkpoint taken every N retired instructions (implies -verify)")
		chromeOut    = flag.String("trace", "", "write a Chrome trace_event file (about:tracing/Perfetto)")
		jsonlOut     = flag.String("jsonl", "", "write the event stream as JSON lines")
		reproFile    = flag.String("repro", "", "replay a .flea reproducer on every model and diff against the reference")
	)
	flag.Parse()

	var model core.Model
	switch *modelName {
	case "base":
		model = core.Baseline
	case "2P":
		model = core.TwoPass
	case "2Pre":
		model = core.TwoPassRegroup
	case "runahead":
		model = core.Runahead
	default:
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}

	cfg := core.DefaultConfig()
	cfg.FeedbackLatency = *feedback
	cfg.CQSize = *cqSize
	cfg.ALATCapacity = *alatCap
	cfg.DeferThrottle = *throttle
	cfg.StallOnAnticipable = *anticipable
	cfg.CheckpointRepair = *checkpoint
	cfg.SBSize = *sbSize
	cfg.ConflictPredictor = *conflictPred

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *reproFile != "" {
		os.Exit(replayRepro(ctx, *reproFile, cfg))
	}

	prog, err := loadProgram(*benchName, *randomSeed, flag.Args(), *doSched)
	if err != nil {
		fatal(err)
	}

	opts := []core.Option{core.WithConfig(cfg)}
	resumed := false
	if *ckptEvery > 0 {
		ref, err := core.ComputeReference(prog, cfg.MaxCycles, core.WithCheckpoints(*ckptEvery))
		if err != nil {
			fatal(err)
		}
		opts = append(opts, core.WithReference(ref))
		if snap := ref.NearestCheckpoint(); snap != nil {
			opts = append(opts, core.ResumeFrom(snap))
			resumed = true
			fmt.Printf("fast-forward: resuming from checkpoint at %d retired instructions\n", snap.Retired)
		}
	} else if *verify {
		opts = append(opts, core.WithVerify())
	}
	if *chromeOut != "" && *jsonlOut != "" {
		fatal(fmt.Errorf("-trace and -jsonl are mutually exclusive"))
	}
	var traceFile *os.File
	if out := *chromeOut + *jsonlOut; out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		if *chromeOut != "" {
			opts = append(opts, core.WithTrace(trace.NewChromeSink(f)))
		} else {
			opts = append(opts, core.WithTrace(trace.NewJSONLSink(f)))
		}
	}

	r, err := core.Simulate(ctx, model, prog, opts...)
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
	report(r)
	if traceFile != nil {
		fmt.Printf("trace written to %s\n", traceFile.Name())
	}
	if *verify || *ckptEvery > 0 {
		fmt.Println("verified: architectural state matches the reference executor")
	}
	if resumed {
		fmt.Println("note: cycle counts cover only the suffix simulated after the checkpoint")
	}
}

// replayRepro runs a .flea reproducer on every machine model at the
// flag-configured two-pass parameters, printing each model's verdict and,
// on divergence, the structured architectural-state diff (which registers
// and memory words differ, and where the committed-store order split).
func replayRepro(ctx context.Context, path string, cfg core.Config) int {
	prog, err := program.LoadFlea(path)
	if err != nil {
		fatal(err)
	}
	ref, err := core.ComputeReference(prog, cfg.MaxCycles)
	if err != nil {
		fatal(fmt.Errorf("reference executor could not run %s: %w", path, err))
	}
	fmt.Printf("%s: %d instructions, %d dynamic (reference)\n",
		path, len(prog.Insts), ref.Result.Instructions)
	var log mem.StoreLog
	diverged := false
	for _, model := range core.Models() {
		_, err := core.Simulate(ctx, model, prog,
			core.WithConfig(cfg), core.WithReference(ref), core.WithStoreLog(&log))
		if err == nil {
			fmt.Printf("  %-9v ok\n", model)
			continue
		}
		diverged = true
		fmt.Printf("  %-9v DIVERGED\n    %v\n", model, err)
	}
	if diverged {
		return 1
	}
	fmt.Println("all models agree with the reference executor")
	return 0
}

func loadProgram(bench string, seed int64, args []string, reschedule bool) (*program.Program, error) {
	switch {
	case bench != "":
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		return b.Program(), nil
	case seed >= 0:
		return workload.Random(seed, workload.DefaultRandomConfig()), nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		p, err := program.Assemble(args[0], string(src))
		if err != nil {
			return nil, err
		}
		if reschedule {
			p, _, err = sched.Schedule(p, sched.DefaultConfig())
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("need -bench NAME, -random SEED, or one assembly file (have %d args)", len(args))
	}
}

func report(r *stats.Run) {
	fmt.Printf("program    %s\nmodel      %s\n", r.Benchmark, r.Model)
	fmt.Printf("cycles     %d\ninstructions %d\nIPC        %.3f\n", r.Cycles, r.Instructions, r.IPC())
	fmt.Println("cycle classes:")
	for c := stats.CycleClass(0); c < stats.NumCycleClasses; c++ {
		fmt.Printf("  %-22s %12d  (%5.1f%%)\n", c, r.ByClass[c], 100*float64(r.ByClass[c])/float64(r.Cycles))
	}
	fmt.Println("data accesses (count/pipe):")
	for lvl := mem.Level(0); lvl < mem.NumLevels; lvl++ {
		fmt.Printf("  %-4s A=%-9d B=%-9d\n", lvl, r.Access[lvl][stats.PipeA], r.Access[lvl][stats.PipeB])
	}
	fmt.Printf("deferred   %d\npre-executed %d\n", r.Deferred, r.PreExecuted)
	fmt.Printf("mispredicts A=%d B=%d\nconflict flushes %d\n", r.MispredictsA, r.MispredictsB, r.ConflictFlushes)
	fmt.Printf("stores     total=%d deferred=%d\n", r.StoresTotal, r.StoresDeferred)
	if r.Cycles > 0 {
		fmt.Printf("mean CQ occupancy %.1f\n", float64(r.CQOccupancySum)/float64(r.Cycles))
	}
	fmt.Printf("regrouped stop bits %d\n", r.Regrouped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleasim:", err)
	os.Exit(1)
}
