// Command fleagcassert verifies the repository's compiler-fact assertions.
// Functions marked //flea:inline, //flea:noescape or //flea:bce promise,
// respectively, that the gc compiler can inline them, that nothing in their
// body escapes to the heap, and that the prove pass eliminated every bounds
// check they contain. Those facts hold today because the hot paths were
// written for them — masked page indexing, arena recycling, pointer-free
// stat counters — but nothing in ordinary tests notices when they rot.
//
// The command recompiles the module with the compiler's diagnostic flags,
//
//	go build '-gcflags=fleaflicker/...=-m -d=ssa/check_bce' ./...
//
// parses the resulting facts, and exits nonzero listing every assertion the
// compiler contradicts. Run it from the module root, directly or via
// `make gcassert` (part of `make ci`).
package main

import (
	"fmt"
	"os"
	"os/exec"

	"fleaflicker/internal/analysis/gcassert"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleagcassert:", err)
		os.Exit(1)
	}
}

func run() error {
	if _, err := os.Stat("go.mod"); err != nil {
		return fmt.Errorf("must run from the module root (go.mod not found): %w", err)
	}
	asserts, err := gcassert.ScanDir(".")
	if err != nil {
		return err
	}
	if len(asserts) == 0 {
		return fmt.Errorf("no //flea:inline, //flea:noescape or //flea:bce assertions found")
	}

	// -m prints inlining and escape decisions; -d=ssa/check_bce prints the
	// bounds checks that survive the prove pass. Both arrive on stderr,
	// replayed from the build cache when the packages are already compiled.
	cmd := exec.Command("go", "build", "-gcflags=fleaflicker/...=-m -d=ssa/check_bce", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	diags := gcassert.ParseDiags(string(out))
	if len(diags) == 0 {
		return fmt.Errorf("go build produced no compiler diagnostics; expected -m output")
	}

	failures := gcassert.Check(asserts, diags)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, f)
		}
		return fmt.Errorf("%d of %d compiler-fact assertions failed", len(failures), len(asserts))
	}
	fmt.Printf("fleagcassert: %d compiler-fact assertions hold\n", len(asserts))
	return nil
}
