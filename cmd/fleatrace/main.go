// Command fleatrace prints a per-cycle, two-pipe execution trace of a
// program on the two-pass machine — the Figure 4 view: what the A-pipe
// dispatched (executed or deferred), what the B-pipe retired or stalled on,
// and every flush.
//
// Usage:
//
//	fleatrace [-bench NAME | -random SEED | FILE.s] [-from N] [-cycles N] [-regroup]
package main

import (
	"flag"
	"fmt"
	"os"

	"fleaflicker/internal/core"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/twopass"
	"fleaflicker/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "trace a named suite benchmark")
		randomSeed = flag.Int64("random", -1, "trace a generated random program")
		from       = flag.Int64("from", 0, "first cycle to print")
		cycles     = flag.Int64("cycles", 200, "number of cycles to print")
		regroup    = flag.Bool("regroup", false, "enable B-pipe instruction regrouping (2Pre)")
		dump       = flag.Bool("dump", false, "print the program listing before tracing")
	)
	flag.Parse()

	prog, err := loadProgram(*benchName, *randomSeed, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Println(prog.Dump())
	}

	cfg := core.DefaultConfig().TwoPassConfig(*regroup)
	m, err := twopass.New(cfg, prog)
	if err != nil {
		fatal(err)
	}
	to := *from + *cycles
	inWindow := func(now int64) bool { return now >= *from && now < to }
	m.OnADispatch = func(now int64, d *pipeline.DynInst) {
		if !inWindow(now) {
			return
		}
		state := "exec "
		switch {
		case d.Deferred:
			state = "DEFER"
		case d.In.Op.IsLoad() && d.Done:
			state = fmt.Sprintf("load@%s", d.Level)
		}
		fmt.Printf("%8d  A  %-6s #%-6d pc=%-5d %s\n", now, state, d.ID, d.PC, d.In)
	}
	m.OnBRetire = func(now int64, d *pipeline.DynInst) {
		if !inWindow(now) {
			return
		}
		state := "merge"
		if d.Deferred {
			state = "exec "
		}
		fmt.Printf("%8d    B   %-6s #%-6d pc=%-5d %s\n", now, state, d.ID, d.PC, d.In)
	}
	lastBlocked := int64(-1)
	m.OnBBlocked = func(now int64, cls stats.CycleClass) {
		if !inWindow(now) {
			return
		}
		// Summarize contiguous stall runs instead of one line per cycle.
		if lastBlocked != now-1 {
			fmt.Printf("%8d    B   stall (%s)\n", now, cls)
		}
		lastBlocked = now
	}
	m.OnFlush = func(now int64, from uint64, redirect int32) {
		if !inWindow(now) {
			return
		}
		fmt.Printf("%8d    B   FLUSH from #%d, refetch pc=%d\n", now, from, redirect)
	}
	r, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntotal: %d cycles, %d instructions, IPC %.3f\n", r.Cycles, r.Instructions, r.IPC())
}

func loadProgram(bench string, seed int64, args []string) (*program.Program, error) {
	switch {
	case bench != "":
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		return b.Program(), nil
	case seed >= 0:
		return workload.Random(seed, workload.DefaultRandomConfig()), nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		return program.Assemble(args[0], string(src))
	default:
		return nil, fmt.Errorf("need -bench NAME, -random SEED, or one assembly file")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleatrace:", err)
	os.Exit(1)
}
