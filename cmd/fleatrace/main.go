// Command fleatrace prints a per-cycle, two-pipe execution trace of a
// program on the two-pass machine — the Figure 4 view: what the A-pipe
// dispatched (executed or deferred), what the B-pipe retired or stalled on,
// and every flush. The text view is rendered from the same trace.Event
// stream the machines emit; -chrome and -jsonl export that stream instead.
//
// Usage:
//
//	fleatrace [-bench NAME | -random SEED | FILE.s] [-from N] [-cycles N]
//	          [-regroup] [-chrome FILE.json] [-jsonl FILE.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fleaflicker/internal/core"
	"fleaflicker/internal/program"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "", "trace a named suite benchmark")
		randomSeed = flag.Int64("random", -1, "trace a generated random program")
		from       = flag.Int64("from", 0, "first cycle to print")
		cycles     = flag.Int64("cycles", 200, "number of cycles to print")
		regroup    = flag.Bool("regroup", false, "enable B-pipe instruction regrouping (2Pre)")
		dump       = flag.Bool("dump", false, "print the program listing before tracing")
		chromeOut  = flag.String("chrome", "", "write a Chrome trace_event file instead of text")
		jsonlOut   = flag.String("jsonl", "", "write the event stream as JSON lines instead of text")
	)
	flag.Parse()

	prog, err := loadProgram(*benchName, *randomSeed, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Println(prog.Dump())
	}

	model := core.TwoPass
	if *regroup {
		model = core.TwoPassRegroup
	}

	var sink trace.Sink
	var traceFile *os.File
	switch {
	case *chromeOut != "" && *jsonlOut != "":
		fatal(fmt.Errorf("-chrome and -jsonl are mutually exclusive"))
	case *chromeOut != "":
		if traceFile, err = os.Create(*chromeOut); err != nil {
			fatal(err)
		}
		sink = trace.NewChromeSink(traceFile)
	case *jsonlOut != "":
		if traceFile, err = os.Create(*jsonlOut); err != nil {
			fatal(err)
		}
		sink = trace.NewJSONLSink(traceFile)
	default:
		sink = textRenderer(*from, *from+*cycles)
	}

	r, err := core.Simulate(context.Background(), model, prog, core.WithTrace(sink))
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}
	if traceFile != nil {
		fmt.Printf("trace written to %s\n", traceFile.Name())
	}
	fmt.Printf("\ntotal: %d cycles, %d instructions, IPC %.3f\n", r.Cycles, r.Instructions, r.IPC())
}

// textRenderer converts the raw event stream back into the Figure 4 text
// view within the [from, to) cycle window.
func textRenderer(from, to int64) trace.Sink {
	lastBlocked := int64(-1)
	return trace.FuncSink(func(e trace.Event) {
		if e.Cycle < from || e.Cycle >= to {
			return
		}
		switch {
		case e.Type == trace.EvDefer:
			fmt.Printf("%8d  A  %-6s #%-6d pc=%-5d %s\n", e.Cycle, "DEFER", e.ID, e.PC, e.Note)
		case e.Type == trace.EvPreExec && e.Pipe == trace.PipeA:
			fmt.Printf("%8d  A  %-6s #%-6d pc=%-5d %s\n", e.Cycle, "exec ", e.ID, e.PC, e.Note)
		case e.Type == trace.EvMerge:
			fmt.Printf("%8d    B   %-6s #%-6d pc=%-5d %s\n", e.Cycle, "merge", e.ID, e.PC, e.Note)
		case e.Type == trace.EvReplay:
			fmt.Printf("%8d    B   %-6s #%-6d pc=%-5d %s\n", e.Cycle, "exec ", e.ID, e.PC, e.Note)
		case e.Type == trace.EvStall && e.Pipe == trace.PipeB:
			// Summarize contiguous stall runs instead of one line per cycle.
			if lastBlocked != e.Cycle-1 {
				fmt.Printf("%8d    B   stall (%s)\n", e.Cycle, e.Note)
			}
			lastBlocked = e.Cycle
		case e.Type == trace.EvFlush:
			fmt.Printf("%8d    B   FLUSH from #%d, refetch pc=%d\n", e.Cycle, e.ID, e.Arg)
		}
	})
}

func loadProgram(bench string, seed int64, args []string) (*program.Program, error) {
	switch {
	case bench != "":
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		return b.Program(), nil
	case seed >= 0:
		return workload.Random(seed, workload.DefaultRandomConfig()), nil
	case len(args) == 1:
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		return program.Assemble(args[0], string(src))
	default:
		return nil, fmt.Errorf("need -bench NAME, -random SEED, or one assembly file")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleatrace:", err)
	os.Exit(1)
}
