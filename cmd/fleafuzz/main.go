// Command fleafuzz runs differential co-simulation campaigns: it generates
// seeded random EPIC programs, runs each across the configuration lattice
// (every machine model at several CQ sizes and feedback latencies), and
// diffs final architectural state against the functional reference
// executor. Diverging programs are delta-debugged down to minimal
// reproducers and written to the corpus directory as .flea files.
//
// Usage:
//
//	fleafuzz [-programs N] [-duration D] [-seed N] [-corpus DIR]
//	         [-smoke] [-checkpoint] [-no-shrink] [-trips N] [-actions N]
//	         [-alias N] [-json] [-quiet]
//	fleafuzz -repro FILE.flea [-checkpoint]
//
// The campaign stops at whichever of -programs or -duration is hit first.
// -repro replays one reproducer across the lattice and reports each cell's
// verdict. Exit status: 0 when all cells agree, 1 on divergence, 2 on
// usage or infrastructure errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"fleaflicker/internal/diffsim"
	"fleaflicker/internal/progen"
	"fleaflicker/internal/program"
)

func main() {
	var (
		programs = flag.Int("programs", 1000, "number of programs to generate and check")
		duration = flag.Duration("duration", 0, "wall-clock budget (0 = none); stops at whichever of -programs/-duration comes first")
		seedBase = flag.Int64("seed", 1, "first generator seed; program i uses seed+i")
		corpus   = flag.String("corpus", "", "directory to write minimized .flea reproducers into")
		repro    = flag.String("repro", "", "replay one .flea reproducer across the lattice and exit")
		smoke    = flag.Bool("smoke", false, "small lattice and small programs (CI smoke budget)")
		ckpt     = flag.Bool("checkpoint", false, "fast-forward lattice cells from the reference's last functional checkpoint instead of simulating from cycle zero")
		noShrink = flag.Bool("no-shrink", false, "keep diverging programs unminimized")
		trips    = flag.Int("trips", 0, "override generator outer-loop trip count")
		actions  = flag.Int("actions", 0, "override generator body actions per trip")
		alias    = flag.Int("alias", -1, "override generator store-to-load alias distance")
		jsonOut  = flag.Bool("json", false, "print campaign stats as JSON")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *repro != "" {
		os.Exit(replay(ctx, *repro, *smoke, *ckpt))
	}

	gen := progen.DefaultConfig()
	cells := diffsim.DefaultLattice()
	if *smoke {
		cells = diffsim.SmokeLattice()
		gen.OuterTrips = 2
		gen.BodyActions = 12
		gen.ArrayBytes = 4 << 10
		gen.ChainNodes = 8
	}
	if *trips > 0 {
		gen.OuterTrips = *trips
	}
	if *actions > 0 {
		gen.BodyActions = *actions
	}
	if *alias >= 0 {
		gen.AliasDistance = *alias
	}

	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	start := time.Now()
	lastReport := start
	var ckptEvery int64
	if *ckpt {
		ckptEvery = diffsim.AutoCheckpoint
	}
	cfg := diffsim.CampaignConfig{
		SeedBase:        *seedBase,
		Programs:        *programs,
		Gen:             gen,
		Cells:           cells,
		Shrink:          !*noShrink,
		CheckpointEvery: ckptEvery,
		OnProgram: func(done int, st *diffsim.CampaignStats) {
			if *quiet {
				return
			}
			if now := time.Now(); now.Sub(lastReport) >= 2*time.Second {
				lastReport = now
				fmt.Fprintf(os.Stderr, "fleafuzz: %d/%d programs, %d cell runs, %d findings (%.0f prog/s)\n",
					done, *programs, st.CellRuns, len(st.Findings), float64(done)/now.Sub(start).Seconds())
			}
		},
	}

	st, err := diffsim.RunCampaign(ctx, cfg)
	elapsed := time.Since(start)
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}

	written, werr := writeCorpus(*corpus, st)
	if werr != nil {
		fatal(werr)
	}

	if *jsonOut {
		printJSON(st, cells, elapsed)
	} else {
		printSummary(st, cells, elapsed, written)
	}
	if len(st.Findings) > 0 {
		os.Exit(1)
	}
}

// replay runs one reproducer across the lattice, printing each cell's
// verdict and the structured state diff for any divergence.
func replay(ctx context.Context, path string, smoke, ckpt bool) int {
	prog, err := program.LoadFlea(path)
	if err != nil {
		fatal(err)
	}
	cells := diffsim.DefaultLattice()
	if smoke {
		cells = diffsim.SmokeLattice()
	}
	var copts []diffsim.CheckerOption
	if ckpt {
		copts = append(copts, diffsim.WithCheckpointing(diffsim.AutoCheckpoint))
	}
	checker := diffsim.NewChecker(cells, copts...)
	res, err := checker.Check(ctx, prog)
	if err != nil {
		fatal(err)
	}
	if res.RefErr != nil {
		fatal(fmt.Errorf("reference executor could not run %s: %w", path, res.RefErr))
	}
	fmt.Printf("%s: %d instructions, %d dynamic (reference)\n", path, len(prog.Insts), res.RefInstructions)
	bad := map[diffsim.Cell]diffsim.Divergence{}
	for _, d := range res.Divergences {
		bad[d.Cell] = d
	}
	for _, cell := range cells {
		if d, ok := bad[cell]; ok {
			fmt.Printf("  %-14v DIVERGED\n    %v\n", cell, d)
		} else {
			fmt.Printf("  %-14v ok\n", cell)
		}
	}
	if len(res.Divergences) > 0 {
		return 1
	}
	fmt.Println("all cells agree with the reference executor")
	return 0
}

// writeCorpus persists each finding's minimized (or, unshrunk, original)
// program as a .flea reproducer.
func writeCorpus(dir string, st *diffsim.CampaignStats) ([]string, error) {
	if dir == "" || len(st.Findings) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	for _, f := range st.Findings {
		p := f.Minimized
		if p == nil {
			p = f.Program
		}
		path := filepath.Join(dir, fmt.Sprintf("repro-seed%d.flea", f.Seed))
		if err := os.WriteFile(path, p.MarshalFlea(), 0o644); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

func printSummary(st *diffsim.CampaignStats, cells []diffsim.Cell, elapsed time.Duration, written []string) {
	fmt.Printf("campaign    %d programs checked, %d skipped, %d lattice cells\n",
		st.Programs, st.Skipped, len(cells))
	fmt.Printf("work        %d cell runs, %d reference instructions, %.1fs (%.0f prog/s)\n",
		st.CellRuns, st.RefInstructions, elapsed.Seconds(), float64(st.Programs)/elapsed.Seconds())
	if len(st.Findings) == 0 {
		fmt.Println("verdict     all models agree with the reference executor on every program")
		return
	}
	fmt.Printf("verdict     %d DIVERGING PROGRAMS\n", len(st.Findings))
	for _, f := range st.Findings {
		fmt.Printf("  %v\n", f)
		for _, d := range f.Divergences {
			fmt.Printf("    %v\n", d)
		}
	}
	for _, p := range written {
		fmt.Printf("reproducer written: %s\n", p)
	}
}

func printJSON(st *diffsim.CampaignStats, cells []diffsim.Cell, elapsed time.Duration) {
	type finding struct {
		Seed      int64    `json:"seed"`
		Cells     []string `json:"cells"`
		Minimized int      `json:"minimized_insts,omitempty"`
	}
	out := struct {
		Programs        int       `json:"programs"`
		Skipped         int       `json:"skipped"`
		Cells           int       `json:"cells"`
		CellRuns        int64     `json:"cell_runs"`
		RefInstructions int64     `json:"ref_instructions"`
		ElapsedSeconds  float64   `json:"elapsed_seconds"`
		Findings        []finding `json:"findings"`
	}{
		Programs: st.Programs, Skipped: st.Skipped, Cells: len(cells),
		CellRuns: st.CellRuns, RefInstructions: st.RefInstructions,
		ElapsedSeconds: elapsed.Seconds(), Findings: []finding{},
	}
	for _, f := range st.Findings {
		fd := finding{Seed: f.Seed}
		for _, d := range f.Divergences {
			fd.Cells = append(fd.Cells, d.Cell.String())
		}
		if f.Minimized != nil {
			fd.Minimized = len(f.Minimized.Insts)
		}
		out.Findings = append(out.Findings, fd)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleafuzz:", err)
	os.Exit(2)
}
