// Command fleaload is a closed-loop load generator for fleasimd: N
// concurrent clients submit jobs (a configurable fraction of which are
// duplicates of a small hot set, exercising the result cache), poll each
// job to completion, and report a latency histogram with p50/p95/p99.
//
// Usage:
//
//	fleaload [-addr http://localhost:8080] [-clients 8] [-requests 25]
//	         [-qps 0] [-dup 0.5] [-bench 300.twolf] [-seed 1]
//
// Each client issues -requests jobs back to back (closed loop: the next
// submission waits for the previous job to finish). -qps > 0 additionally
// caps the aggregate submission rate. -dup is the probability that a
// submission repeats one of a small set of hot job specs instead of using
// a fresh cache key; 429 (queue full) and 503 (draining) responses honour
// Retry-After and do not count as errors unless they persist.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fleaflicker/internal/service"
	"fleaflicker/internal/service/client"
)

// hotSetSize is how many distinct specs the duplicate fraction draws from.
const hotSetSize = 4

// maxRetries bounds backoff on 429/503 before a submission counts as an
// error.
const maxRetries = 20

type counters struct {
	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	errors     atomic.Int64
	backpress  atomic.Int64
	dupIssued  atomic.Int64
	histogram  service.LatencyHistogram
	latenciesM sync.Mutex
	latencies  []time.Duration
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "fleasimd base URL")
		clients  = flag.Int("clients", 8, "concurrent closed-loop clients")
		requests = flag.Int("requests", 25, "jobs per client")
		qps      = flag.Float64("qps", 0, "aggregate submission-rate cap (0 = unthrottled)")
		dup      = flag.Float64("dup", 0.5, "fraction of submissions duplicating a hot spec [0,1]")
		bench    = flag.String("bench", "300.twolf", "benchmark for generated jobs")
		model    = flag.String("model", "2P", "model for generated jobs")
		seed     = flag.Int64("seed", 1, "rng seed for the duplicate pattern")
	)
	flag.Parse()
	if err := run(*addr, *clients, *requests, *qps, *dup, *bench, *model, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "fleaload: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, clients, requests int, qps, dup float64, bench, model string, seed int64) error {
	if clients < 1 || requests < 1 {
		return fmt.Errorf("need at least one client and one request")
	}
	if dup < 0 || dup > 1 {
		return fmt.Errorf("-dup must be in [0,1]")
	}

	// Aggregate rate limiter: a shared ticker channel clients pull from.
	var gate <-chan time.Time
	if qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / qps))
		defer t.Stop()
		gate = t.C
	}

	cl := client.New(addr)
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for r := 0; r < requests; r++ {
				if gate != nil {
					<-gate
				}
				spec := makeSpec(rng, dup, bench, model, i, r, &c)
				if err := oneJob(cl, spec, &c); err != nil {
					c.errors.Add(1)
					fmt.Fprintf(os.Stderr, "fleaload: client %d: %v\n", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(cl, &c, clients, elapsed)
	if c.errors.Load() > 0 {
		return fmt.Errorf("%d request errors", c.errors.Load())
	}
	return nil
}

// makeSpec builds the next submission: with probability dup it repeats one
// of hotSetSize shared specs (same cache key service-side); otherwise the
// seed field makes the key unique to this (client, request) pair.
func makeSpec(rng *rand.Rand, dup float64, bench, model string, client, req int, c *counters) service.JobSpec {
	if rng.Float64() < dup {
		c.dupIssued.Add(1)
		return service.JobSpec{Model: model, Bench: bench, Seed: int64(rng.Intn(hotSetSize))}
	}
	return service.JobSpec{Model: model, Bench: bench, Seed: int64(1000 + client*1_000_000 + req)}
}

// oneJob drives a single closed-loop interaction: submit (absorbing
// backpressure through the shared client's retry loop, which parses the
// server's retryAfterSeconds hint new-name-first), then poll to a terminal
// state, recording end-to-end latency. The pause is capped so a load test
// never sleeps the full server hint.
func oneJob(cl *client.Client, spec service.JobSpec, c *counters) error {
	ctx := context.Background()
	start := time.Now()

	ack, err := cl.SubmitJobRetry(ctx, spec, client.RetryPolicy{
		MaxRetries:     maxRetries,
		MaxWait:        200 * time.Millisecond,
		OnBackpressure: func(time.Duration) { c.backpress.Add(1) },
	})
	if err != nil {
		return err
	}
	c.submitted.Add(1)

	st, err := cl.WaitJob(ctx, ack.Location, 2*time.Millisecond)
	if err != nil {
		return err
	}
	if st.State == "failed" {
		c.failed.Add(1)
		return fmt.Errorf("job %s failed: %s", ack.ID, st.Error)
	}
	lat := time.Since(start)
	c.completed.Add(1)
	c.histogram.Record(lat)
	c.latenciesM.Lock()
	c.latencies = append(c.latencies, lat)
	c.latenciesM.Unlock()
	return nil
}

// report prints the end-of-run summary: throughput, the exact latency
// quantiles (from the recorded samples, not the bucketed histogram), and
// the server's cache-hit counters scraped from /metricsz.
func report(cl *client.Client, c *counters, clients int, elapsed time.Duration) {
	c.latenciesM.Lock()
	lat := append([]time.Duration(nil), c.latencies...)
	c.latenciesM.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p*float64(len(lat)-1) + 0.5)
		return lat[i]
	}

	fmt.Printf("fleaload: %d clients, %d jobs in %s (%.1f jobs/s)\n",
		clients, c.completed.Load(), elapsed.Round(time.Millisecond),
		float64(c.completed.Load())/elapsed.Seconds())
	fmt.Printf("  submitted %d  completed %d  failed %d  errors %d  backpressure-retries %d  duplicates-issued %d\n",
		c.submitted.Load(), c.completed.Load(), c.failed.Load(), c.errors.Load(),
		c.backpress.Load(), c.dupIssued.Load())
	fmt.Printf("  latency p50 %s  p95 %s  p99 %s  max %s  mean %s\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), c.histogram.Max().Round(time.Microsecond),
		c.histogram.Mean().Round(time.Microsecond))

	hits, misses, coalesced, ok := scrapeCache(cl)
	if !ok {
		fmt.Printf("  server cache: /metricsz unavailable\n")
		return
	}
	total := hits + misses + coalesced
	rate := 0.0
	if total > 0 {
		rate = float64(hits+coalesced) / float64(total) * 100
	}
	fmt.Printf("  server cache: %d hits, %d coalesced, %d misses (%.1f%% served without a fresh run)\n",
		hits, coalesced, misses, rate)
	reportCluster(cl)
}

// reportCluster prints the per-backend breakdown when the target is a
// coordinator. A plain backend has no /clusterz, so any failure (404,
// refused, bad body) just skips the section.
func reportCluster(cl *client.Client) {
	var cz struct {
		Backends []struct {
			ID                string `json:"id"`
			Up                bool   `json:"up"`
			Executed          int64  `json:"executed"`
			Stolen            int64  `json:"stolen"`
			CacheHitsPermille int64  `json:"cache_hit_ratio_permille"`
		} `json:"backends"`
		Coordinator map[string]int64 `json:"coordinator"`
	}
	if err := cl.GetJSON(context.Background(), "/clusterz", &cz); err != nil {
		return
	}
	fmt.Printf("  cluster: %d backends, %d routed, %d stolen, %d rerouted, %d peer hits, %d dup drops\n",
		len(cz.Backends),
		cz.Coordinator["cluster.units.routed"],
		cz.Coordinator["cluster.units.stolen"],
		cz.Coordinator["cluster.units.rerouted"],
		cz.Coordinator["cluster.federation.peer_hits"],
		cz.Coordinator["cluster.federation.duplicate_drops"])
	for _, b := range cz.Backends {
		state := "up"
		if !b.Up {
			state = "down"
		}
		fmt.Printf("    %-22s %-4s executed %-5d stolen %-4d cache %.1f%%\n",
			b.ID, state, b.Executed, b.Stolen, float64(b.CacheHitsPermille)/10)
	}
}

// scrapeCache pulls the cache counters from the server's /metricsz JSON.
func scrapeCache(cl *client.Client) (hits, misses, coalesced int64, ok bool) {
	counters, _, err := cl.ScrapeMetrics(context.Background())
	if err != nil {
		return 0, 0, 0, false
	}
	return counters[service.MetricCacheHits],
		counters[service.MetricCacheMisses],
		counters[service.MetricCacheCoalesced], true
}
