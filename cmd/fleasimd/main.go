// Command fleasimd serves the simulator as a long-lived backend: a job
// manager with a bounded admission queue, a GOMAXPROCS-sized worker pool
// and a content-addressed result cache, exposed over an HTTP JSON API.
//
// Usage:
//
//	fleasimd [-addr :8080] [-workers N] [-queue-depth N] [-cache N]
//	         [-job-timeout 2m] [-max-units N] [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/jobs            submit a run, a server-side-expanded sweep, or
//	                         a differential fuzzing campaign (kind "fuzz",
//	                         chunked into one unit per seed range)
//	POST /v1/units           submit pre-resolved units (coordinator dispatch)
//	GET  /v1/jobs/{id}       job status and per-unit results
//	GET  /v1/jobs/{id}/events  SSE progress stream
//	GET  /v1/cache/{key}     cache-federation peer lookup
//	GET  /healthz            liveness (503 while draining)
//	GET  /metricsz           counters, gauges and job-latency quantiles
//
// Coordinator mode (-coordinator) serves the same job API but routes units
// across a set of backend fleasimd daemons by consistent hashing, federates
// their result caches, health-checks membership and steals queued work from
// stragglers:
//
//	fleasimd -coordinator -backends host1:8080,host2:8080,host3:8080
//	fleasimd -coordinator -membership members.txt   # one URL per line
//
// and additionally exposes GET /clusterz (per-backend routing, stealing and
// cache breakdown).
//
// SIGINT/SIGTERM triggers a graceful drain: intake stops, admitted jobs
// finish (up to -drain-timeout), then the listener closes.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fleaflicker/internal/cluster"
	"fleaflicker/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 256, "bounded admission queue capacity, in units")
		cacheEntries = flag.Int("cache", 4096, "result-cache capacity, in units (-1 = unbounded)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "default per-job timeout")
		maxUnits     = flag.Int("max-units", 1024, "maximum units a single sweep may expand to")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on shutdown")

		coordinator = flag.Bool("coordinator", false, "serve as a cluster coordinator instead of a backend")
		backends    = flag.String("backends", "", "coordinator: comma-separated backend URLs")
		membership  = flag.String("membership", "", "coordinator: file with one backend URL per line (# comments)")
		replicas    = flag.Int("replicas", 0, "coordinator: virtual nodes per backend on the hash ring (0 = default)")
		probeEvery  = flag.Duration("probe-interval", time.Second, "coordinator: health-probe interval")
	)
	flag.Parse()

	var err error
	if *coordinator {
		var members []string
		members, err = membershipList(*backends, *membership)
		if err == nil {
			err = runCoordinator(*addr, cluster.Config{
				Backends:       members,
				Replicas:       *replicas,
				QueueDepth:     *queueDepth,
				MaxUnitsPerJob: *maxUnits,
				ProbeInterval:  *probeEvery,
			}, *drainTimeout)
		}
	} else {
		err = run(*addr, service.Config{
			Workers:        *workers,
			QueueDepth:     *queueDepth,
			CacheEntries:   *cacheEntries,
			DefaultTimeout: *jobTimeout,
			MaxUnitsPerJob: *maxUnits,
		}, *drainTimeout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleasimd: %v\n", err)
		os.Exit(1)
	}
}

// membershipList resolves the coordinator's member set from -backends and/or
// a -membership file (one URL per line; blank lines and # comments skipped).
func membershipList(backendsFlag, membershipFile string) ([]string, error) {
	var members []string
	for _, b := range strings.Split(backendsFlag, ",") {
		if b = strings.TrimSpace(b); b != "" {
			members = append(members, b)
		}
	}
	if membershipFile != "" {
		f, err := os.Open(membershipFile)
		if err != nil {
			return nil, fmt.Errorf("membership file: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			members = append(members, line)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("membership file: %w", err)
		}
	}
	if len(members) == 0 {
		return nil, errors.New("coordinator mode needs -backends or -membership")
	}
	// Normalize before the duplicate check: "host:8081", "http://host:8081"
	// and "http://host:8081/" are one daemon, and combining -backends with
	// -membership makes accidental repeats easy. A duplicate member would
	// become a second backend index with identical ring vnode hashes, skewing
	// placement and double-probing the same daemon.
	seen := make(map[string]bool, len(members))
	for i, m := range members {
		m = cluster.NormalizeBackendURL(m)
		if seen[m] {
			return nil, fmt.Errorf("duplicate backend %s in membership", m)
		}
		seen[m] = true
		members[i] = m
	}
	return members, nil
}

// serve runs an HTTP handler until SIGINT/SIGTERM, then calls drain while
// the listener still answers status polls, and finally closes the listener.
func serve(addr, mode string, handler http.Handler, drain func(context.Context) error, drainTimeout time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		log.Printf("fleasimd: serving %s on %s", mode, addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("fleasimd: %v, draining (deadline %s)", sig, drainTimeout)
	}

	// Drain first so /healthz flips to 503 and in-flight jobs finish while
	// the listener still answers status polls; then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("fleasimd: drained cleanly")
	return nil
}

func run(addr string, cfg service.Config, drainTimeout time.Duration) error {
	m := service.New(cfg)
	return serve(addr, "backend", service.NewServer(m), m.Drain, drainTimeout)
}

func runCoordinator(addr string, cfg cluster.Config, drainTimeout time.Duration) error {
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	log.Printf("fleasimd: coordinating %d backends: %s",
		len(cfg.Backends), strings.Join(c.Backends(), ", "))
	return serve(addr, "coordinator", cluster.NewServer(c), c.Drain, drainTimeout)
}
