// Command fleasimd serves the simulator as a long-lived backend: a job
// manager with a bounded admission queue, a GOMAXPROCS-sized worker pool
// and a content-addressed result cache, exposed over an HTTP JSON API.
//
// Usage:
//
//	fleasimd [-addr :8080] [-workers N] [-queue-depth N] [-cache N]
//	         [-job-timeout 2m] [-max-units N] [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/jobs            submit a run, a server-side-expanded sweep, or
//	                         a differential fuzzing campaign (kind "fuzz",
//	                         chunked into one unit per seed range)
//	GET  /v1/jobs/{id}       job status and per-unit results
//	GET  /v1/jobs/{id}/events  SSE progress stream
//	GET  /healthz            liveness (503 while draining)
//	GET  /metricsz           counters, gauges and job-latency quantiles
//
// SIGINT/SIGTERM triggers a graceful drain: intake stops, admitted jobs
// finish (up to -drain-timeout), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fleaflicker/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 256, "bounded admission queue capacity, in units")
		cacheEntries = flag.Int("cache", 4096, "result-cache capacity, in units (-1 = unbounded)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "default per-job timeout")
		maxUnits     = flag.Int("max-units", 1024, "maximum units a single sweep may expand to")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on shutdown")
	)
	flag.Parse()
	if err := run(*addr, service.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *jobTimeout,
		MaxUnitsPerJob: *maxUnits,
	}, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "fleasimd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, drainTimeout time.Duration) error {
	m := service.New(cfg)
	srv := &http.Server{Addr: addr, Handler: service.NewServer(m)}

	errc := make(chan error, 1)
	go func() {
		log.Printf("fleasimd: serving on %s", addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("fleasimd: %v, draining (deadline %s)", sig, drainTimeout)
	}

	// Drain first so /healthz flips to 503 and in-flight jobs finish while
	// the listener still answers status polls; then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := m.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("fleasimd: drained cleanly")
	return nil
}
