package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMembershipListNormalizes checks member URLs canonicalize to the form
// the coordinator's backend clients use (http scheme, no trailing slash).
func TestMembershipListNormalizes(t *testing.T) {
	members, err := membershipList("host1:8081, http://host2:8082/", "")
	if err != nil {
		t.Fatalf("membershipList: %v", err)
	}
	want := []string{"http://host1:8081", "http://host2:8082"}
	if len(members) != len(want) {
		t.Fatalf("members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members[%d] = %q, want %q", i, members[i], want[i])
		}
	}
}

// TestMembershipListRejectsDuplicates drives the duplicate-member refusal:
// the same daemon spelled two ways in -backends, and a -membership file
// repeating a -backends entry. A duplicate would become a second backend
// index with identical ring vnode hashes.
func TestMembershipListRejectsDuplicates(t *testing.T) {
	if _, err := membershipList("host1:8081,http://host1:8081/", ""); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("same daemon spelled two ways: err = %v, want duplicate error", err)
	}

	file := filepath.Join(t.TempDir(), "members.txt")
	if err := os.WriteFile(file, []byte("# members\nhost1:8081\n"), 0o644); err != nil {
		t.Fatalf("writing membership file: %v", err)
	}
	if _, err := membershipList("http://host1:8081", file); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("-backends repeated in -membership: err = %v, want duplicate error", err)
	}
}
