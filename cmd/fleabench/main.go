// Command fleabench reproduces the paper's evaluation: every table and
// figure, plus the extension sweeps. With no flags it runs everything.
//
// Usage:
//
//	fleabench [-fig6] [-fig7] [-fig8] [-table1] [-table2] [-scalars]
//	          [-motivation] [-runahead] [-sweeps] [-bench name] [-verify]
//	          [-json dir] [-cpuprofile file] [-memprofile file]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"fleaflicker/internal/core"
	"fleaflicker/internal/experiments"
	"fleaflicker/internal/workload"
)

var (
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile = flag.String("memprofile", "", "write an allocation profile (all allocations since start) to this file on exit")
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := run(ctx)
	stop()
	if err != nil {
		fatal(err)
	}
}

// run executes the selected experiments. Profiling brackets the whole
// selection: main handles the error after the profiles are flushed (fatal
// calls os.Exit, which would skip deferred writes).
func run(ctx context.Context) error {
	var (
		fig6       = flag.Bool("fig6", false, "Figure 6: normalized execution cycles (base/2P/2Pre)")
		fig7       = flag.Bool("fig7", false, "Figure 7: initiated access cycles by level and pipe")
		fig8       = flag.Bool("fig8", false, "Figure 8: B->A feedback latency sweep")
		table1     = flag.Bool("table1", false, "Table 1: machine configuration")
		table2     = flag.Bool("table2", false, "Table 2: benchmarks and instruction counts")
		scalars    = flag.Bool("scalars", false, "Section 4 scalar results")
		motivation = flag.Bool("motivation", false, "Section 2 motivation numbers")
		runaheadC  = flag.Bool("runahead", false, "run-ahead comparator vs two-pass")
		sweeps     = flag.Bool("sweeps", false, "extension sweeps: CQ size, ALAT capacity, deferral throttle")
		future     = flag.Bool("future", false, "futuristic-machine and perfect-memory ablations (§4)")
		ifconv     = flag.Bool("ifconvert", false, "if-conversion study: predication vs B-DET branches")
		benchName  = flag.String("bench", "", "restrict to one benchmark")
		verify     = flag.Bool("verify", false, "verify every run against the reference executor")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs (fig6/fig7/fig8) to this directory")
		jsonDir    = flag.String("json", "", "write a machine-readable BENCH_<rev>.json perf snapshot (instr/s and allocs/run per model) to this directory")
	)
	flag.Parse()
	all := !(*fig6 || *fig7 || *fig8 || *table1 || *table2 || *scalars || *motivation || *runaheadC || *sweeps || *future || *ifconv || *jsonDir != "")

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fleabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accounting so live-heap numbers are accurate
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "fleabench: memprofile:", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	benches := workload.Suite()
	if *benchName != "" {
		b, err := workload.ByName(*benchName)
		if err != nil {
			return err
		}
		benches = []*workload.Benchmark{b}
	}

	if all || *table1 {
		fmt.Println(experiments.RenderTable1(cfg))
	}
	if all || *table2 {
		out, err := experiments.RenderTable2(benches)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}

	needSuite := all || *fig6 || *fig7 || *scalars || *motivation || *runaheadC
	var suite *experiments.SuiteRuns
	if needSuite {
		models := experiments.Fig6Models
		if all || *runaheadC {
			models = core.Models()
		}
		var err error
		suite, err = experiments.RunSuite(ctx, cfg, models, benches, *verify)
		if err != nil {
			return err
		}
	}
	if all || *motivation {
		fmt.Println(experiments.RenderMotivation(suite))
	}
	if all || *fig6 {
		fmt.Println(experiments.RenderFig6(suite))
	}
	if all || *fig7 {
		fmt.Println(experiments.RenderFig7(suite))
	}
	if *csvDir != "" && suite != nil {
		if err := experiments.WriteCSV(suite, *csvDir); err != nil {
			return err
		}
		fmt.Printf("wrote fig6.csv and fig7.csv to %s\n\n", *csvDir)
	}
	if all || *scalars {
		fmt.Println(experiments.RenderScalars(suite))
	}
	if all || *runaheadC {
		fmt.Println(experiments.RenderRunaheadCompare(suite))
	}
	if all || *fig8 {
		names := []string{"099.go", "130.li", "181.mcf"}
		if *benchName != "" {
			names = []string{*benchName}
		}
		points, err := experiments.Fig8(cfg, names)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig8(points))
		if *csvDir != "" {
			if err := experiments.WriteFig8CSV(points, *csvDir); err != nil {
				return err
			}
			fmt.Printf("wrote fig8.csv to %s\n\n", *csvDir)
		}
	}
	if all || *future {
		subset := benches
		if *benchName == "" {
			// A fresh slice: truncating benches would clobber the shared
			// workload suite's backing array.
			subset = make([]*workload.Benchmark, 0, 3)
			for _, name := range []string{"181.mcf", "183.equake", "300.twolf"} {
				b, err := workload.ByName(name)
				if err != nil {
					return err
				}
				subset = append(subset, b)
			}
		}
		fut, err := experiments.CompareMachines(cfg, experiments.FutureConfig(), subset)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMachineComparison(
			"Futuristic machine (§4): smaller low-level caches, longer latencies", "future", fut))
		perf, err := experiments.CompareMachines(cfg, experiments.PerfectMemoryConfig(), subset)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMachineComparison(
			"Perfect-memory ablation: with no misses, two-pass collapses to baseline", "perfect", perf))
	}
	if *jsonDir != "" {
		allocBench := "300.twolf"
		if *benchName != "" {
			allocBench = *benchName
		}
		rep, err := experiments.BuildBenchReport(ctx, cfg, core.Models(), benches, allocBench)
		if err != nil {
			return err
		}
		rep.Cluster, err = experiments.ClusterBench(2000, 50)
		if err != nil {
			return err
		}
		path, err := experiments.WriteBenchReport(rep, *jsonDir, revision())
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || *ifconv {
		names := []string{"300.twolf", "099.go", "130.li"}
		if *benchName != "" {
			names = []string{*benchName}
		}
		rows, err := experiments.IfConvertStudy(cfg, names)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderIfConvertStudy(rows))
	}
	if all || *sweeps {
		name := "181.mcf"
		if *benchName != "" {
			name = *benchName
		}
		cq, err := experiments.CQSweep(cfg, name, []int{16, 32, 64, 128, 256})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep("Coupling-queue size sweep (paper: insensitive near 64)", "CQ", "deferred", cq))
		al, err := experiments.ALATSweep(cfg, name, []int{0, 8, 16, 32, 64})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep("ALAT capacity sweep (0 = perfect, Table 1)", "entries", "flushes", al))
		th, err := experiments.ThrottleSweep(cfg, name, []int{0, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSweep("A-pipe deferral throttle sweep (§3.5 future work; 0 = off)", "limit", "deferred", th))
	}
	return nil
}

// revision names the snapshot file: the working tree's short commit hash,
// or "dev" outside a git checkout.
func revision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleabench:", err)
	os.Exit(1)
}
