// Casestudy reproduces the paper's Figure 1 / Figure 4 walk-through: the
// 181.mcf pricing loop, first as the baseline sees it (an issue-group stall
// freezing independent work), then cycle by cycle on the two-pass machine,
// showing loads pre-executing in the A-pipe, their consumers deferring, and
// the B-pipe merging results behind them.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"fleaflicker/internal/core"
	"fleaflicker/internal/trace"
	"fleaflicker/internal/workload"
)

func main() {
	b, err := workload.ByName("181.mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog := b.Program()

	fmt.Println("The mcf pricing loop (scheduled issue groups):")
	fmt.Println(prog.Dump()[:900] + "  ...\n")

	base, err := core.Simulate(context.Background(), core.Baseline, prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (%.1f%% stalled on loads)\n\n",
		base.Cycles, 100*float64(base.MemStallCycles())/float64(base.Cycles))

	fmt.Println("Two-pass execution, cycles 300-320 (A-pipe left, B-pipe right):")
	const from, to = 300, 320
	window := trace.FuncSink(func(e trace.Event) {
		if e.Cycle < from || e.Cycle >= to {
			return
		}
		switch e.Type {
		case trace.EvDefer:
			fmt.Printf("  %5d  A: %-28s %s\n", e.Cycle, e.Note, "DEFERRED to B-pipe")
		case trace.EvPreExec:
			// Pre-executed loads carry their serving level as a " @L2"-style
			// suffix. Branch targets also contain "@", so only a trailing
			// level name counts.
			in, tag := e.Note, "executes"
			if i := strings.LastIndex(in, " @"); i >= 0 {
				switch lvl := in[i+2:]; lvl {
				case "L1", "L2", "L3", "Mem":
					in, tag = in[:i], fmt.Sprintf("load starts (%s)", lvl)
				}
			}
			fmt.Printf("  %5d  A: %-28s %s\n", e.Cycle, in, tag)
		case trace.EvMerge:
			fmt.Printf("  %5d  B:   %-26s %s\n", e.Cycle, e.Note, "merges A result")
		case trace.EvReplay:
			fmt.Printf("  %5d  B:   %-26s %s\n", e.Cycle, e.Note, "executes (was deferred)")
		}
	})
	r, err := core.Simulate(context.Background(), core.TwoPass, prog, core.WithTrace(window))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-pass: %d cycles — %.1f%% fewer than baseline\n",
		r.Cycles, 100*(1-float64(r.Cycles)/float64(base.Cycles)))
	fmt.Printf("node-potential misses initiated in the A-pipe overlap during B-pipe stalls\n")
	fmt.Printf("(A-initiated accesses: %d; B-initiated: %d)\n",
		sum(r.Access, 0), sum(r.Access, 1))
}

func sum(acc [4][2]int64, pipe int) int64 {
	var t int64
	for lvl := 0; lvl < 4; lvl++ {
		t += acc[lvl][pipe]
	}
	return t
}
