// Casestudy reproduces the paper's Figure 1 / Figure 4 walk-through: the
// 181.mcf pricing loop, first as the baseline sees it (an issue-group stall
// freezing independent work), then cycle by cycle on the two-pass machine,
// showing loads pre-executing in the A-pipe, their consumers deferring, and
// the B-pipe merging results behind them.
package main

import (
	"fmt"
	"log"

	"fleaflicker/internal/core"
	"fleaflicker/internal/pipeline"
	"fleaflicker/internal/twopass"
	"fleaflicker/internal/workload"
)

func main() {
	b, err := workload.ByName("181.mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog := b.Program()

	fmt.Println("The mcf pricing loop (scheduled issue groups):")
	fmt.Println(prog.Dump()[:900] + "  ...\n")

	base, err := core.Run(core.Baseline, core.DefaultConfig(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (%.1f%% stalled on loads)\n\n",
		base.Cycles, 100*float64(base.MemStallCycles())/float64(base.Cycles))

	fmt.Println("Two-pass execution, cycles 300-320 (A-pipe left, B-pipe right):")
	m, err := twopass.New(core.DefaultConfig().TwoPassConfig(false), prog)
	if err != nil {
		log.Fatal(err)
	}
	const from, to = 300, 320
	m.OnADispatch = func(now int64, d *pipeline.DynInst) {
		if now < from || now >= to {
			return
		}
		tag := "executes"
		if d.Deferred {
			tag = "DEFERRED to B-pipe"
		} else if d.In.Op.IsLoad() {
			tag = fmt.Sprintf("load starts (%s)", d.Level)
		}
		fmt.Printf("  %5d  A: %-28s %s\n", now, d.In.String(), tag)
	}
	m.OnBRetire = func(now int64, d *pipeline.DynInst) {
		if now < from || now >= to {
			return
		}
		tag := "merges A result"
		if d.Deferred {
			tag = "executes (was deferred)"
		}
		fmt.Printf("  %5d  B:   %-26s %s\n", now, d.In.String(), tag)
	}
	r, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-pass: %d cycles — %.1f%% fewer than baseline\n",
		r.Cycles, 100*(1-float64(r.Cycles)/float64(base.Cycles)))
	fmt.Printf("node-potential misses initiated in the A-pipe overlap during B-pipe stalls\n")
	fmt.Printf("(A-initiated accesses: %d; B-initiated: %d)\n",
		sum(r.Access, 0), sum(r.Access, 1))
}

func sum(acc [4][2]int64, pipe int) int64 {
	var t int64
	for lvl := 0; lvl < 4; lvl++ {
		t += acc[lvl][pipe]
	}
	return t
}
