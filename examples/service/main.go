// Service example: run the simulation service in-process, drive it through
// its HTTP API exactly as a remote client would, and watch the result cache
// work.
//
// The program starts a Manager on a local listener, submits a parameter
// sweep (two models × three coupling-queue sizes, expanded server-side into
// six simulation units), follows the job's SSE progress stream, then
// re-submits one equivalent single run to show it served from cache without
// a fresh simulation. Finally it prints the service counters and drains.
//
// Run with: go run ./examples/service
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"fleaflicker/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The service side: a manager plus its HTTP façade on a local port.
	m := service.New(service.Config{Workers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewServer(m)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("fleasimd (in-process) serving on %s\n\n", base)

	// 1. Submit a sweep: the grid expands server-side into 6 units.
	ack, err := submit(base, `{
		"kind": "sweep",
		"models": ["base", "2P"],
		"benches": ["300.twolf"],
		"sweep": {"cq_sizes": [16, 64, 256]}
	}`)
	if err != nil {
		return err
	}
	fmt.Printf("sweep accepted: id=%s units=%d\n", ack.ID, ack.TotalUnits)

	// 2. Follow its SSE progress stream to completion.
	if err := follow(base, ack.Events); err != nil {
		return err
	}

	// 3. Fetch the final status and print the per-unit results.
	st, err := status(base, ack.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\n%-6s %-10s %-8s %8s %10s\n", "model", "params", "cached", "cycles", "sim ms")
	for _, u := range st.Units {
		params := "-"
		for _, p := range u.Params {
			params = fmt.Sprintf("%s=%d", p.Name, p.Value)
		}
		fmt.Printf("%-6s %-10s %-8v %8d %10.2f\n",
			u.Model, params, u.Cached, u.Result.Run.Cycles, u.Result.DurationMS)
	}

	// 4. An equivalent single run: same model, bench and cq_size as one of
	// the sweep's grid points, so its cache key matches and no simulation
	// runs.
	ack2, err := submit(base, `{"model": "2P", "bench": "300.twolf", "config": {"cq_size": 64}}`)
	if err != nil {
		return err
	}
	st2, err := status(base, ack2.ID)
	if err != nil {
		return err
	}
	fmt.Printf("\nre-submitted 2P/cq=64 as a single run: cached=%v (served without a fresh simulation)\n",
		st2.Units[0].Cached)

	// 5. The service counters, as /metricsz reports them.
	fmt.Printf("\nservice counters:\n")
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "service.cache.") || strings.HasPrefix(sc.Text(), "service.jobs.latency.p") {
			fmt.Printf("  %s\n", sc.Text())
		}
	}

	// 6. Graceful drain: intake stops, everything admitted finishes.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		return err
	}
	fmt.Printf("\ndrained cleanly\n")
	return srv.Close()
}

type ack struct {
	ID         string `json:"id"`
	Events     string `json:"events"`
	TotalUnits int    `json:"total_units"`
}

func submit(base, body string) (*ack, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
	}
	var a ack
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		return nil, err
	}
	return &a, nil
}

// follow prints the job's SSE stream until the terminal "done" frame.
func follow(base, events string) error {
	resp, err := http.Get(base + events)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev service.ProgressEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				return err
			}
			if ev.State != "" {
				fmt.Printf("  sse: %s (%d/%d)\n", ev.State, ev.Completed, ev.Total)
				if event == "done" {
					return nil
				}
				continue
			}
			fmt.Printf("  sse: progress %d/%d  unit=%.8s\n", ev.Completed, ev.Total, ev.Key)
		}
	}
	return fmt.Errorf("stream ended without a done frame")
}

func status(base, id string) (*service.Status, error) {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var st service.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if st.State == "done" || st.State == "failed" {
			return &st, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}
