// Regroup demonstrates B-pipe instruction regrouping (the 2Pre
// configuration): after A-pipe pre-execution, the stop bits between
// adjacent issue groups often protect dependences that no longer carry
// latency, and removing them lets the B-pipe drain its backlog several
// groups per cycle.
package main

import (
	"context"
	"fmt"
	"log"

	"fleaflicker/internal/core"
	"fleaflicker/internal/stats"
	"fleaflicker/internal/workload"
)

func main() {
	fmt.Println("2P vs 2Pre across the suite:")
	fmt.Printf("%-14s %10s %10s %9s %14s\n", "benchmark", "2P", "2Pre", "speedup", "stop bits gone")
	cfg := core.DefaultConfig()
	for _, b := range workload.Suite() {
		p := b.Program()
		r2, err := core.Simulate(context.Background(), core.TwoPass, p, core.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		r2re, err := core.Simulate(context.Background(), core.TwoPassRegroup, p, core.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10d %10d %8.3fx %14d\n",
			b.Name, r2.Cycles, r2re.Cycles,
			float64(r2.Cycles)/float64(r2re.Cycles), r2re.Regrouped)
	}

	// Where does the gain come from? Compare the unstalled-cycle share:
	// regrouping retires the same instructions in fewer dispatch cycles.
	b, _ := workload.ByName("183.equake")
	r2, _ := core.Simulate(context.Background(), core.TwoPass, b.Program(), core.WithConfig(cfg))
	r2re, _ := core.Simulate(context.Background(), core.TwoPassRegroup, b.Program(), core.WithConfig(cfg))
	fmt.Printf("\n183.equake unstalled dispatch cycles: 2P %d -> 2Pre %d\n",
		r2.ByClass[stats.Unstalled], r2re.ByClass[stats.Unstalled])
	fmt.Println("(the B-pipe issues merged groups while draining its queue backlog)")
}
