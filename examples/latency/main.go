// Latency explores the two coupling parameters of the two-pass design: the
// B→A feedback latency (Figure 8) and the coupling-queue size (which the
// paper reports as insensitive around 64).
package main

import (
	"context"
	"fmt"
	"log"

	"fleaflicker/internal/core"
	"fleaflicker/internal/workload"
)

func main() {
	b, err := workload.ByName("099.go")
	if err != nil {
		log.Fatal(err)
	}
	prog := b.Program()

	fmt.Println("B->A feedback latency sweep on 099.go (Figure 8):")
	fmt.Printf("%8s %12s %12s\n", "latency", "deferred", "cycles")
	for _, lat := range []int{0, 1, 2, 4, 8, -1} {
		cfg := core.DefaultConfig()
		cfg.FeedbackLatency = lat
		r, err := core.Simulate(context.Background(), core.TwoPass, prog, core.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprint(lat)
		if lat < 0 {
			name = "inf"
		}
		fmt.Printf("%8s %12d %12d\n", name, r.Deferred, r.Cycles)
	}

	fmt.Println("\nCoupling-queue size sweep on 181.mcf:")
	mcf, err := workload.ByName("181.mcf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12s %14s\n", "CQ size", "cycles", "mean occupancy")
	for _, size := range []int{16, 32, 64, 128, 256} {
		cfg := core.DefaultConfig()
		cfg.CQSize = size
		r, err := core.Simulate(context.Background(), core.TwoPass, mcf.Program(), core.WithConfig(cfg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %14.1f\n", size, r.Cycles, float64(r.CQOccupancySum)/float64(r.Cycles))
	}
	fmt.Println("\nAs in the paper, moderate feedback latency is tolerated (the step")
	fmt.Println("beyond latency 1 costs ~1% on 099.go). Queue size matters more here")
	fmt.Println("than in the paper: our mcf kernel is miss-bound, so a deeper queue")
	fmt.Println("directly buys more memory-level parallelism.")
}
