// Quickstart: assemble a small EPIC program, run it on the baseline in-order
// machine and on the flea-flicker two-pass machine, and compare where the
// cycles went.
//
// The kernel is the paper's Figure 1 scenario in miniature: two independent
// streams of cache misses, with each load's consumer scheduled right behind
// it (the compiler assumed a cache hit). On the baseline, the first miss
// stalls its whole issue group — and the second stream's load, which is
// dataflow-independent, is trapped behind that stall ("artificial
// dependences"), so the two misses serialize. The two-pass machine defers
// only the stalled consumers into the B-pipe; the A-pipe keeps going and
// starts the second miss immediately, overlapping the latencies. (With
// nothing serial anywhere, this is the textbook best case: the two-pass
// machine runs as deep as its queue and miss slots allow.)
package main

import (
	"context"
	"fmt"
	"log"

	"fleaflicker/internal/core"
	"fleaflicker/internal/program"
	"fleaflicker/internal/stats"
)

const src = `
        movi r5 = 0x10000000      // stream A cursor
        movi r6 = 0x14000000      // stream B cursor
        movi r9 = 400             // iterations
        movi r20 = 0
        movi r21 = 0 ;;
loop:   ld4 r3 = [r5] ;;          // stream A: misses (4KB stride)
        add r20 = r20, r3 ;;      // consumer scheduled for a hit; stalls base
        ld4 r4 = [r6] ;;          // stream B: independent, but trapped in base
        add r21 = r21, r4 ;;
        addi r5 = r5, 4096
        addi r6 = r6, 4096
        addi r9 = r9, -1 ;;
        cmpi.ne p1 = r9, 0 ;;
        (p1) br loop ;;
        movi r1 = 0x18000000 ;;
        st4 [r1] = r20
        st4 [r1, 4] = r21 ;;
        halt ;;
`

func main() {
	p, err := program.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p.Data.WriteU32(uint32(0x10000000+i*4096), uint32(i))
		p.Data.WriteU32(uint32(0x14000000+i*4096), uint32(i*7))
	}

	cfg := core.DefaultConfig()
	var baseCycles int64
	for _, model := range []core.Model{core.Baseline, core.TwoPass, core.TwoPassRegroup} {
		r, err := core.Simulate(context.Background(), model, p, core.WithConfig(cfg), core.WithVerify())
		if err != nil {
			log.Fatal(err)
		}
		if model == core.Baseline {
			baseCycles = r.Cycles
		}
		fmt.Printf("%-5s %8d cycles  (%.2fx)  IPC %.3f  load-stall %5.1f%%  deferred %d\n",
			model, r.Cycles, float64(baseCycles)/float64(r.Cycles), r.IPC(),
			100*float64(r.ByClass[stats.LoadStall])/float64(r.Cycles),
			r.Deferred)
	}
	fmt.Println("\nEvery run is verified against the functional reference executor.")
}
