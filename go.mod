module fleaflicker

go 1.22
