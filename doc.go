// Package fleaflicker is a from-scratch, cycle-level Go reproduction of
// Barnes et al., "Beating in-order stalls with 'flea-flicker' two-pass
// pipelining" (MICRO-36, 2003).
//
// The library lives under internal/: the machine models (baseline,
// twopass, runahead), their substrates (isa, program, sched, arch, mem,
// bpred, pipeline), the benchmark suite (workload), and the evaluation
// harness (stats, experiments, core). The cmd/ tools — fleasim, fleabench,
// fleatrace — and the runnable examples/ are the intended entry points;
// bench_test.go in this package regenerates every table and figure of the
// paper as testing.B benchmarks.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package fleaflicker
